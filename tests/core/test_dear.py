"""Tests for DeAR: decoupled reduce-scatter / all-gather scheduling."""

import pytest

from repro.comm import DecoupledAllReduceBackend, RingAllReduceBackend
from repro.core import DeARCore, dear_scheduler
from repro.errors import ConfigError, SchedulerError
from repro.net import Transport
from repro.sim import Environment
from repro.training import ClusterSpec, SchedulerSpec, TrainingJob, run_experiment
from repro.models import uniform_model
from repro.units import MB


def make_backend(env, machines=4, base_sync=0.002):
    return DecoupledAllReduceBackend(
        env,
        machines,
        1,
        bandwidth=1e9,
        transport=Transport("t", 0.0, 1.0),
        base_sync=base_sync,
        per_rank_sync=0.0,
    )


def ready_task(core, iteration, layer, size):
    task = core.create_task(iteration, layer, size)
    task.notify_ready()
    return task


def test_dear_runs_both_phases_per_tensor():
    env = Environment()
    backend = make_backend(env)
    core = DeARCore(env, backend)
    tasks = [ready_task(core, 0, layer, 1 * MB) for layer in (2, 1, 0)]
    env.run()
    assert all(task.is_finished for task in tasks)
    assert core.reduce_scatters_launched == 3
    assert core.all_gathers_launched == 3
    assert backend.reduce_scatters_run == 3
    assert backend.all_gathers_run == 3
    assert core.queued == 0 and core.inflight == 0


def test_reduce_scatters_preempt_deferred_all_gathers():
    """Tensors arriving in backward order (high layer first): every
    reduce-scatter dispatches before any all-gather."""
    env = Environment()
    backend = make_backend(env)
    core = DeARCore(env, backend)
    for layer in (3, 2, 1, 0):
        ready_task(core, 0, layer, 1 * MB)
    env.run()
    # With a single FIFO pipe and all four tensors ready at t=0, the
    # pipe runs RS,RS,RS,RS then AG,AG,AG,AG — so at the moment the
    # last reduce-scatter completes, all four all-gathers are deferred.
    assert core.max_deferred_all_gathers == 4
    assert core.reduce_scatters_launched == 4
    assert core.all_gathers_launched == 4


def test_all_gathers_drain_lowest_layer_first():
    env = Environment()
    backend = make_backend(env)
    core = DeARCore(env, backend)
    for layer in (3, 2, 1, 0):
        ready_task(core, 0, layer, 1 * MB)
    finished_layers = []
    original = backend._record_complete

    def spy(chunk):
        finished_layers.append(chunk.layer)
        original(chunk)

    backend._record_complete = spy
    env.run()
    assert finished_layers == [0, 1, 2, 3]


def test_dear_fusion_batches_adjacent_tensors():
    env = Environment()
    backend = make_backend(env)
    core = DeARCore(env, backend, fusion_bytes=10 * MB)
    tasks = [ready_task(core, 0, layer, 1 * MB) for layer in (4, 3, 2, 1, 0)]
    env.run()
    assert all(task.is_finished for task in tasks)
    assert core.reduce_scatters_launched == 1  # 5 MB fused into one op
    assert core.tensors_scheduled == 5
    assert backend.reduce_scatters_run == 1
    assert backend.all_gathers_run == 1


def test_dear_fusion_splits_at_buffer_size():
    env = Environment()
    backend = make_backend(env)
    core = DeARCore(env, backend, fusion_bytes=4 * MB)
    tasks = [ready_task(core, 0, layer, 3 * MB) for layer in range(3)]
    env.run()
    assert core.reduce_scatters_launched == 3  # first always fits, alone
    assert all(task.is_finished for task in tasks)


def test_dear_amortises_sync_vs_monolithic_fifo():
    """Sync-dominated ring: DeAR's phase pipelining finishes the same
    work no later than per-tensor monolithic FIFO."""
    env_dear = Environment()
    backend_dear = make_backend(env_dear, base_sync=0.005)
    core = DeARCore(env_dear, backend_dear)
    for layer in range(10):
        ready_task(core, 0, layer, 1 * MB)
    env_dear.run()
    dear_time = env_dear.now

    env_plain = Environment()
    backend_plain = make_backend(env_plain, base_sync=0.005)
    from repro.core import ByteSchedulerCore, PRIORITY_FIFO

    plain = ByteSchedulerCore(env_plain, backend_plain, priority_mode=PRIORITY_FIFO)
    tasks = [plain.create_task(0, layer, 1 * MB) for layer in range(10)]
    for task in tasks:
        task.notify_ready()
    env_plain.run()
    # Identical total pipe work (RS+AG == one collective), so the bare-
    # core drain times agree; DeAR's win appears once a training loop
    # overlaps the AG half with forward compute (see the job test).
    assert dear_time == pytest.approx(env_plain.now, rel=1e-9)


def test_dear_requires_collective_backend():
    from repro.net import Fabric
    from repro.comm import PSBackend

    env = Environment()
    fabric = Fabric(env, ["w0", "s0"], 1e9, Transport("t", 0.0, 1.0))
    ps = PSBackend(env, fabric, ("w0",), ("s0",), layer_bytes=(1,))
    with pytest.raises(SchedulerError):
        DeARCore(env, ps)


def test_dear_requires_phase_backend():
    env = Environment()
    monolithic = RingAllReduceBackend(
        env, 2, 1, 1e9, Transport("t", 0.0, 1.0)
    )
    with pytest.raises(SchedulerError):
        DeARCore(env, monolithic)


def test_dear_validation():
    env = Environment()
    backend = make_backend(env)
    with pytest.raises(SchedulerError):
        DeARCore(env, backend, fusion_bytes=0)
    with pytest.raises(SchedulerError):
        DeARCore(env, backend, inflight_ops=0)


def test_dear_scheduler_factory():
    env = Environment()
    backend = make_backend(env)
    core = dear_scheduler(env, backend, fusion_bytes=8 * MB)
    assert isinstance(core, DeARCore)
    assert core.fusion_bytes == 8 * MB
    assert core.partition_bytes is None  # never splits — no knob


def test_dear_end_to_end_in_training_job():
    model = uniform_model(num_layers=8, layer_bytes=1 * MB, fp_time=0.001, bp_time=0.002)
    cluster = ClusterSpec(
        machines=2, gpus_per_machine=2, arch="allreduce", bandwidth_gbps=10
    )
    result = run_experiment(model, cluster, SchedulerSpec(kind="dear"), measure=3)
    assert result.speed > 0


def test_dear_rejected_on_ps():
    model = uniform_model()
    cluster = ClusterSpec(machines=2, arch="ps")
    with pytest.raises(ConfigError):
        run_experiment(model, cluster, SchedulerSpec(kind="dear"), measure=2)


def test_dear_beats_vanilla_on_tcp_theta_regime():
    """The acceptance bar: on the paper's TCP all-reduce setup (sync
    cost 1.2 ms per collective) DeAR beats whole-tensor FIFO with no
    tuning at all."""
    cluster = ClusterSpec(
        machines=4, gpus_per_machine=8, arch="allreduce", transport="tcp",
        framework="pytorch", bandwidth_gbps=25,
    )
    plain = run_experiment("vgg16", cluster, SchedulerSpec(kind="fifo"), measure=3)
    dear = run_experiment("vgg16", cluster, SchedulerSpec(kind="dear"), measure=3)
    assert dear.speed > plain.speed


def test_dear_overlaps_all_gather_with_next_forward():
    """The mechanism itself: some all-gather of iteration i completes
    after iteration i+1's forward pass has already begun."""
    model = uniform_model(
        num_layers=6, layer_bytes=4 * MB, fp_time=0.002, bp_time=0.003
    )
    cluster = ClusterSpec(
        machines=2, gpus_per_machine=2, arch="allreduce", transport="tcp",
        bandwidth_gbps=10, framework="pytorch",
    )
    job = TrainingJob(model, cluster, SchedulerSpec(kind="dear"), enable_trace=True)
    job.run(measure=3)
    spans = job.trace.spans
    ag_spans = [s for s in spans if s.category == "all_gather"]
    assert ag_spans, "all-gather phases must be traced"
    forward_starts = {}
    for engine in job.engines.values():
        for op in engine.ops:
            if op.started_at is None:
                continue
            head = op.name.split(".")[0]
            # Forward compute ops are named f{iteration}.{layer}@{worker}
            # (fp_proxy ops also start with "f" but are not digits).
            if op.name.startswith("f") and head[1:].isdigit():
                iteration = int(head[1:])
                forward_starts.setdefault(iteration, op.started_at)
                forward_starts[iteration] = min(
                    forward_starts[iteration], op.started_at
                )
    overlapped = False
    for span in ag_spans:
        iteration = int(span.name.split(".")[0].removeprefix("iter"))
        nxt = forward_starts.get(iteration + 1)
        if nxt is not None and span.end > nxt:
            overlapped = True
            break
    assert overlapped, "no all-gather crossed the iteration boundary"


def test_dear_deterministic_across_repeats():
    """Bit-identical spans and speeds across repeated seeded runs."""

    def one_run():
        model = uniform_model(
            num_layers=5, layer_bytes=2 * MB, fp_time=0.001, bp_time=0.002
        )
        cluster = ClusterSpec(
            machines=2, gpus_per_machine=2, arch="allreduce",
            transport="tcp", bandwidth_gbps=10, framework="pytorch",
        )
        job = TrainingJob(model, cluster, SchedulerSpec(kind="dear"), enable_trace=True)
        result = job.run(measure=3)
        spans = tuple(
            (s.category, s.name, s.start, s.end) for s in job.trace.spans
        )
        return result.speed, spans, job.backend.sync_digest()

    first = one_run()
    second = one_run()
    assert first == second
