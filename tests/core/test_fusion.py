"""Tests for Horovod-style tensor fusion (FusionCore)."""

import pytest

from repro.comm import RingAllReduceBackend
from repro.core import FusionCore
from repro.errors import ConfigError, SchedulerError
from repro.net import Transport
from repro.sim import Environment
from repro.training import ClusterSpec, SchedulerSpec, run_experiment
from repro.models import uniform_model
from repro.units import MB


def make_backend(env, machines=4, base_sync=0.002):
    return RingAllReduceBackend(
        env,
        machines,
        1,
        bandwidth=1e9,
        transport=Transport("t", 0.0, 1.0),
        base_sync=base_sync,
        per_rank_sync=0.0,
    )


def ready_task(core, iteration, layer, size):
    task = core.create_task(iteration, layer, size)
    task.notify_ready()
    return task


def test_fusion_batches_small_tensors_into_one_collective():
    env = Environment()
    backend = make_backend(env)
    core = FusionCore(env, backend, fusion_bytes=10 * MB, cycle_time=0.001)
    tasks = [ready_task(core, 0, layer, 1 * MB) for layer in range(5)]
    env.run()
    assert all(task.is_finished for task in tasks)
    assert backend.collectives_run == 1  # 5 MB fused into one launch
    assert core.fused_launches == 1
    assert core.average_fusion == 5.0


def test_fusion_splits_batches_at_buffer_size():
    env = Environment()
    backend = make_backend(env)
    core = FusionCore(env, backend, fusion_bytes=4 * MB, cycle_time=0.001)
    tasks = [ready_task(core, 0, layer, 3 * MB) for layer in range(3)]
    env.run()
    # 3 MB + 3 MB exceeds 4 MB: each goes alone (first always fits).
    assert backend.collectives_run == 3
    assert all(task.is_finished for task in tasks)


def test_fusion_amortises_sync_cost():
    """With sync-dominated collectives, fusion beats per-tensor FIFO."""
    env_fused = Environment()
    backend_fused = make_backend(env_fused, base_sync=0.005)
    core = FusionCore(env_fused, backend_fused, fusion_bytes=64 * MB, cycle_time=0.001)
    for layer in range(10):
        ready_task(core, 0, layer, 1 * MB)
    env_fused.run()
    fused_time = env_fused.now

    env_plain = Environment()
    backend_plain = make_backend(env_plain, base_sync=0.005)
    from repro.core import ByteSchedulerCore, PRIORITY_FIFO

    plain = ByteSchedulerCore(env_plain, backend_plain, priority_mode=PRIORITY_FIFO)
    plain_tasks = [
        plain.create_task(0, layer, 1 * MB) for layer in range(10)
    ]
    for task in plain_tasks:
        task.notify_ready()
    env_plain.run()
    assert fused_time < env_plain.now  # one sync vs ten


def test_fusion_requires_collective_backend():
    from repro.net import Fabric
    from repro.comm import PSBackend

    env = Environment()
    fabric = Fabric(env, ["w0", "s0"], 1e9, Transport("t", 0.0, 1.0))
    ps = PSBackend(env, fabric, ("w0",), ("s0",), layer_bytes=(1,))
    with pytest.raises(SchedulerError):
        FusionCore(env, ps)


def test_fusion_validation():
    env = Environment()
    backend = make_backend(env)
    with pytest.raises(SchedulerError):
        FusionCore(env, backend, fusion_bytes=0)
    with pytest.raises(SchedulerError):
        FusionCore(env, backend, cycle_time=0)


def test_fusion_end_to_end_in_training_job():
    model = uniform_model(num_layers=8, layer_bytes=1 * MB, fp_time=0.001, bp_time=0.002)
    cluster = ClusterSpec(
        machines=2, gpus_per_machine=2, arch="allreduce", bandwidth_gbps=10
    )
    result = run_experiment(model, cluster, SchedulerSpec(kind="fusion"), measure=3)
    assert result.speed > 0


def test_fusion_beats_plain_fifo_on_tiny_tensors():
    """Many small tensors on a big ring: fusion amortises sync."""
    model = uniform_model(num_layers=24, layer_bytes=512 * 1024, fp_time=0.0005, bp_time=0.001)
    cluster = ClusterSpec(
        machines=8, gpus_per_machine=8, arch="allreduce", transport="tcp",
        bandwidth_gbps=100,
    )
    plain = run_experiment(model, cluster, SchedulerSpec(kind="fifo"), measure=3)
    fused = run_experiment(model, cluster, SchedulerSpec(kind="fusion"), measure=3)
    assert fused.speed > plain.speed


def test_fusion_rejected_on_ps():
    model = uniform_model()
    cluster = ClusterSpec(machines=2, arch="ps")
    with pytest.raises(ConfigError):
        run_experiment(model, cluster, SchedulerSpec(kind="fusion"), measure=2)
