"""Unit tests for the framework adapters (Dependency Proxy wiring)."""


import pytest

from repro.comm.base import ChunkHandle, CommBackend
from repro.core import (
    ByteSchedulerAdapter,
    ByteSchedulerCore,
    CommTask,
    ReadyCountdown,
    VanillaAdapter,
    make_adapter,
)
from repro.errors import SchedulerError
from repro.frameworks import EngineOp, MXNetEngine, OpKind, PyTorchEngine, TensorFlowEngine
from repro.sim import Environment


class SlowBackend(CommBackend):
    """Chunks take a fixed time; records start order."""

    is_collective = True

    def __init__(self, env, service=1.0):
        self.env = env
        self.service = service
        self.starts = []

    @property
    def workers(self):
        return ("m0",)

    def start_chunk(self, chunk):
        self.starts.append((self.env.now, chunk.layer))
        completion = self.env.timeout(self.service, value=chunk)
        return ChunkHandle(sent=completion, done=completion)


def setup(engine_cls, scheduled, env=None, service=1.0, **core_kwargs):
    env = env or Environment()
    backend = SlowBackend(env, service=service)
    core = ByteSchedulerCore(env, backend, **core_kwargs)
    engine = engine_cls(env)
    adapter = make_adapter(scheduled, engine, core)
    return env, backend, core, engine, adapter


def make_task(core, iteration, layer, size=100.0):
    task = core.create_task(iteration, layer, size)
    return task, ReadyCountdown(task, 1)


def bp_stub(engine, duration=1.0, name="bp"):
    return engine.post(EngineOp(name, OpKind.COMPUTE, duration=duration))


def test_adapter_factory():
    env, _b, core, engine, _a = setup(MXNetEngine, scheduled=True)
    assert isinstance(make_adapter(True, engine, core), ByteSchedulerAdapter)
    assert isinstance(make_adapter(False, engine, core), VanillaAdapter)


def test_vanilla_comm_waits_for_bp_then_completes_at_finish():
    env, backend, core, engine, adapter = setup(MXNetEngine, scheduled=False)
    bp = bp_stub(engine, duration=2.0)
    task, countdown = make_task(core, 0, 0)
    comm = adapter.post_comm(0, 0, bp, task, countdown)
    env.run()
    assert backend.starts == [(2.0, 0)]  # launched right after bp
    assert comm.finished_at == pytest.approx(3.0)  # bp + 1s transfer


def test_vanilla_forward_gate_is_comm_op_without_barrier():
    env, backend, core, engine, adapter = setup(MXNetEngine, scheduled=False)
    bp = bp_stub(engine)
    task, countdown = make_task(core, 0, 0)
    comm = adapter.post_comm(0, 0, bp, task, countdown)
    assert adapter.forward_gate(1, 0) is comm
    assert adapter.forward_gate(0, 0) is None


def test_vanilla_barrier_engine_gates_on_barrier():
    env, backend, core, engine, adapter = setup(TensorFlowEngine, scheduled=False)
    bp = bp_stub(engine)
    task, countdown = make_task(core, 0, 0)
    adapter.post_comm(0, 0, bp, task, countdown)
    barrier = adapter.finish_iteration(0)
    assert barrier is not None
    assert adapter.forward_gate(1, 0) is barrier
    env.run()
    assert barrier.finished_at == pytest.approx(2.0)  # waits the transfer


def test_bytescheduler_ready_proxy_fires_notify_ready():
    env, backend, core, engine, adapter = setup(MXNetEngine, scheduled=True)
    bp = bp_stub(engine, duration=1.5)
    task, countdown = make_task(core, 0, 0)
    adapter.post_comm(0, 0, bp, task, countdown)
    env.run()
    assert backend.starts == [(1.5, 0)]  # scheduled only after bp


def test_bytescheduler_held_comm_gates_forward_until_finish():
    env, backend, core, engine, adapter = setup(MXNetEngine, scheduled=True)
    bp = bp_stub(engine, duration=1.0)
    task, countdown = make_task(core, 0, 0)
    held = adapter.post_comm(0, 0, bp, task, countdown)
    gate = adapter.forward_gate(1, 0)
    assert gate is held
    fp_next = engine.post(EngineOp("fp1", OpKind.COMPUTE, deps=[gate], duration=0.5))
    env.run()
    # bp 1.0 + transfer 1.0, then forward 0.5.
    assert fp_next.finished_at == pytest.approx(2.5)


def test_barrier_crossing_lets_barrier_pass_early():
    """The §3.4 design: with ByteScheduler, the global barrier passes as
    soon as BP is done, while the transfer keeps running out of engine."""
    env, backend, core, engine, adapter = setup(TensorFlowEngine, scheduled=True, service=10.0)
    bp = bp_stub(engine, duration=1.0)
    task, countdown = make_task(core, 0, 0)
    adapter.post_comm(0, 0, bp, task, countdown)
    barrier = adapter.finish_iteration(0)
    gate = adapter.forward_gate(1, 0)
    fp_next = engine.post(EngineOp("fp1", OpKind.COMPUTE, deps=[gate], duration=0.5))
    env.run()
    assert barrier.finished_at == pytest.approx(1.0)  # crossed!
    # ...but the layer's forward proxy still enforced the dependency.
    assert fp_next.finished_at == pytest.approx(11.5)


def test_vanilla_barrier_engine_blocks_without_crossing():
    """Contrast case: the vanilla adapter's barrier waits for the slow
    transfer, so the next forward cannot start early."""
    env, backend, core, engine, adapter = setup(TensorFlowEngine, scheduled=False, service=10.0)
    bp = bp_stub(engine, duration=1.0)
    task, countdown = make_task(core, 0, 0)
    adapter.post_comm(0, 0, bp, task, countdown)
    barrier = adapter.finish_iteration(0)
    env.run()
    assert barrier.finished_at == pytest.approx(11.0)


def test_imperative_hooks_block_driver():
    env, backend, core, engine, adapter = setup(PyTorchEngine, scheduled=True, service=5.0)
    bp = bp_stub(engine, duration=1.0)
    task, countdown = make_task(core, 0, 0)
    adapter.post_comm(0, 0, bp, task, countdown)
    barrier = adapter.finish_iteration(0)
    gate = adapter.forward_gate(1, 0)
    fp_next = engine.post(EngineOp("fp1", OpKind.COMPUTE, deps=[gate], duration=0.5))
    env.run()
    assert barrier.finished_at == pytest.approx(1.0)
    assert fp_next.finished_at == pytest.approx(6.5)


def test_collective_countdown_requires_all_parties():
    env = Environment()
    backend = SlowBackend(env)
    core = ByteSchedulerCore(env, backend)
    task = core.create_task(0, 0, 100.0)
    countdown = ReadyCountdown(task, parties=3)
    countdown.arrive()
    countdown.arrive()
    env.run()
    assert backend.starts == []  # not everyone ready
    countdown.arrive()
    env.run()
    assert len(backend.starts) == 1


def test_countdown_over_arrival_rejected():
    env = Environment()
    backend = SlowBackend(env)
    core = ByteSchedulerCore(env, backend)
    task = core.create_task(0, 0, 100.0)
    countdown = ReadyCountdown(task, parties=1)
    countdown.arrive()
    with pytest.raises(SchedulerError):
        countdown.arrive()


def test_countdown_validation():
    env = Environment()
    backend = SlowBackend(env)
    core = ByteSchedulerCore(env, backend)
    task = CommTask(core, 0, 0, 100.0)
    with pytest.raises(SchedulerError):
        ReadyCountdown(task, parties=0)
