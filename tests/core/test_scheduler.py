"""Unit tests for Algorithm 1 (priority queue + credit-based preemption)."""


import pytest

from repro.comm.base import ChunkHandle, CommBackend
from repro.core import ByteSchedulerCore, PRIORITY_FIFO
from repro.errors import SchedulerError
from repro.sim import Environment


class ManualBackend(CommBackend):
    """Records chunk starts; completes them only when the test says so."""

    is_collective = True

    def __init__(self, env):
        self.env = env
        self.started = []  # (time, chunk, event)

    @property
    def workers(self):
        return ("m0",)

    def start_chunk(self, chunk):
        event = self.env.event()
        self.started.append((self.env.now, chunk, event))
        return ChunkHandle(sent=event, done=event)

    def complete(self, index=0):
        """Deliver the index-th oldest still-pending chunk."""
        pending = [entry for entry in self.started if not entry[2].triggered]
        _time, chunk, event = pending[index]
        event.succeed(chunk)

    def start_order(self):
        return [(chunk.layer, chunk.chunk_index) for _t, chunk, _e in self.started]


class TimedBackend(CommBackend):
    """Chunks complete after a fixed service time, FIFO-free (parallel)."""

    is_collective = True

    def __init__(self, env, service=1.0):
        self.env = env
        self.service = service
        self.started = []

    @property
    def workers(self):
        return ("m0",)

    def start_chunk(self, chunk):
        self.started.append((self.env.now, chunk))
        completion = self.env.timeout(self.service, value=chunk)
        return ChunkHandle(sent=completion, done=completion)


def make_core(env, backend=None, **kwargs):
    backend = backend or ManualBackend(env)
    return ByteSchedulerCore(env, backend, **kwargs), backend


def test_layer_priority_orders_starts():
    env = Environment()
    core, backend = make_core(env, credit_bytes=100.0)
    low = core.create_task(0, 5, 100.0)   # low priority (big layer index)
    high = core.create_task(0, 1, 100.0)  # high priority
    low.notify_ready()
    high.notify_ready()
    env.run()
    # Credit admits one at a time; the high-priority task must go first.
    assert backend.start_order() == [(1, 0)]
    backend.complete()
    env.run()
    assert backend.start_order() == [(1, 0), (5, 0)]


def test_fifo_mode_uses_readiness_order():
    env = Environment()
    core, backend = make_core(env, priority_mode=PRIORITY_FIFO, credit_bytes=100.0)
    # Enqueued in layer order 0..2 (as a prebuilt graph would), but made
    # ready in backward order 2..0 — FIFO must follow readiness.
    tasks = [core.create_task(0, layer, 100.0) for layer in range(3)]
    for task in reversed(tasks):
        task.notify_ready()
    env.run()
    assert backend.start_order() == [(2, 0)]
    backend.complete()
    env.run()
    backend.complete()
    env.run()
    assert backend.start_order() == [(2, 0), (1, 0), (0, 0)]


def test_credit_limits_inflight_bytes():
    env = Environment()
    core, backend = make_core(env, partition_bytes=100.0, credit_bytes=250.0)
    task = core.create_task(0, 0, 1000.0)  # 10 chunks of 100B
    task.notify_ready()
    env.run()
    assert len(backend.started) == 2  # 250 credit admits two 100B chunks
    assert core.credit == pytest.approx(50.0)
    backend.complete()
    env.run()
    assert len(backend.started) == 3


def test_credit_returns_enable_progress_to_completion():
    env = Environment()
    backend = TimedBackend(Environment(), 1.0)
    env = backend.env = Environment()
    core = ByteSchedulerCore(
        env, backend, partition_bytes=100.0, credit_bytes=100.0
    )
    task = core.create_task(0, 0, 500.0)
    task.notify_ready()
    env.run()
    assert task.is_finished
    # Stop-and-wait: starts at t=0,1,2,3,4.
    starts = [t for t, _c in backend.started]
    assert starts == pytest.approx([0.0, 1.0, 2.0, 3.0, 4.0])


def test_head_of_line_blocking_preserves_priority():
    """A big high-priority chunk at the head must NOT be bypassed by a
    smaller low-priority chunk that would fit the remaining credit."""
    env = Environment()
    core, backend = make_core(env, credit_bytes=150.0)
    filler = core.create_task(0, 2, 100.0)
    filler.notify_ready()
    env.run()  # 100B in flight, 50 credit left
    big_high = core.create_task(0, 0, 120.0)
    small_low = core.create_task(0, 9, 40.0)
    big_high.notify_ready()
    small_low.notify_ready()
    env.run()
    assert backend.start_order() == [(2, 0)]  # nothing else started
    backend.complete()
    env.run()
    # Credit 150 again: the 120B high-priority head starts, leaving 30 —
    # still not enough for the 40B low-priority chunk (blocked again).
    assert backend.start_order() == [(2, 0), (0, 0)]
    backend.complete()
    env.run()
    assert backend.start_order() == [(2, 0), (0, 0), (9, 0)]


def test_oversized_subtask_escapes_when_idle():
    env = Environment()
    core, backend = make_core(env, credit_bytes=50.0)
    task = core.create_task(0, 0, 200.0)  # bigger than total credit
    task.notify_ready()
    env.run()
    assert len(backend.started) == 1  # escape clause: started while idle
    backend.complete()
    env.run()
    assert task.is_finished
    assert core.credit == pytest.approx(50.0)  # uncharged, unreturned


def test_preemption_at_partition_granularity():
    """While a low-priority tensor's chunks stream, a high-priority
    arrival jumps ahead of the *remaining* chunks (the Figure 2 win)."""
    env = Environment()
    core, backend = make_core(env, partition_bytes=100.0, credit_bytes=100.0)
    low = core.create_task(0, 7, 400.0)  # 4 chunks
    low.notify_ready()
    env.run()
    backend.complete()  # chunk (7,0) done -> (7,1) starts
    env.run()
    high = core.create_task(0, 1, 200.0)  # 2 chunks arrive mid-stream
    high.notify_ready()
    env.run()
    backend.complete()  # (7,1) done -> high jumps queue
    env.run()
    backend.complete()
    env.run()
    backend.complete()
    env.run()
    backend.complete()
    env.run()
    backend.complete()
    env.run()
    assert backend.start_order() == [
        (7, 0), (7, 1), (1, 0), (1, 1), (7, 2), (7, 3),
    ]
    assert core.preemption_opportunities >= 1


def test_notify_delay_defers_credit_return():
    env = Environment()
    backend = TimedBackend(Environment(), 1.0)
    env = backend.env = Environment()
    core = ByteSchedulerCore(
        env,
        backend,
        partition_bytes=100.0,
        credit_bytes=100.0,
        notify_delay=0.5,
    )
    task = core.create_task(0, 0, 300.0)
    task.notify_ready()
    env.run()
    starts = [t for t, _c in backend.started]
    # Each cycle: 1.0s service + 0.5s notification before the next start.
    assert starts == pytest.approx([0.0, 1.5, 3.0])


def test_reconfigure_partition_applies_to_new_tasks():
    env = Environment()
    core, backend = make_core(env, partition_bytes=100.0)
    first = core.create_task(0, 0, 400.0)
    core.reconfigure(partition_bytes=200.0)
    second = core.create_task(1, 0, 400.0)
    assert len(first.subtasks) == 4
    assert len(second.subtasks) == 2


def test_reconfigure_credit_preserves_lent_amount():
    env = Environment()
    core, backend = make_core(env, partition_bytes=100.0, credit_bytes=100.0)
    task = core.create_task(0, 0, 300.0)
    task.notify_ready()
    env.run()  # one chunk in flight, credit 0
    core.reconfigure(credit_bytes=250.0)
    env.run()
    # New capacity 250 minus the 100 lent -> 150 available -> one more starts.
    assert len(backend.started) == 2
    assert core.credit == pytest.approx(50.0)


def test_shutdown_stops_scheduling():
    env = Environment()
    core, backend = make_core(env, credit_bytes=100.0)
    task = core.create_task(0, 0, 100.0)
    core.shutdown()
    with pytest.raises(SchedulerError):
        core.create_task(0, 1, 100.0)
    task.notify_ready()
    env.run()
    assert backend.started == []


def test_invalid_configs_rejected():
    env = Environment()
    backend = ManualBackend(env)
    with pytest.raises(SchedulerError):
        ByteSchedulerCore(env, backend, priority_mode="weird")
    with pytest.raises(SchedulerError):
        ByteSchedulerCore(env, backend, credit_bytes=0.0)
    with pytest.raises(SchedulerError):
        ByteSchedulerCore(env, backend, partition_bytes=-1.0)
    with pytest.raises(SchedulerError):
        ByteSchedulerCore(env, backend, notify_delay=-0.1)


def test_stats_counters():
    env = Environment()
    backend = TimedBackend(Environment(), 0.1)
    env = backend.env = Environment()
    core = ByteSchedulerCore(env, backend, partition_bytes=100.0)
    task = core.create_task(0, 0, 500.0)
    task.notify_ready()
    env.run()
    assert core.subtasks_started == 5
    assert core.bytes_started == pytest.approx(500.0)
    assert core.tasks_enqueued == 1
    assert core.inflight == 0
    assert core.queued == 0


def test_enqueue_foreign_task_rejected():
    env = Environment()
    core_a, _ = make_core(env)
    core_b, _ = make_core(env)
    from repro.core import CommTask

    task = CommTask(core_a, 0, 0, 100.0)
    with pytest.raises(SchedulerError):
        core_b.enqueue(task)


def test_partition_override_larger_than_credit_does_not_hang():
    """A per-layer partition unit bigger than the whole credit window
    must start via the liveness escape, not wait forever."""
    env = Environment()
    core, backend = make_core(
        env, credit_bytes=50.0, partition_overrides={3: 200.0}
    )
    task = core.create_task(0, 3, 200.0)
    task.notify_ready()
    env.run()
    assert len(backend.started) == 1  # escaped, uncharged
    assert core.credit == pytest.approx(50.0)
    backend.complete()
    env.run()
    assert task.is_finished


def test_float_drift_head_at_capacity_does_not_deadlock():
    """Regression: mixed partition sizes drift the credit a few ULPs
    below capacity (1.3 - 0.3 - 0.15 + 0.3 + 0.15 != 1.3).  A head
    sized exactly at capacity then fails ``credit >= size`` while the
    old escape (``size > capacity``) also fails — the core sat on a
    non-empty queue with nothing in flight, forever."""
    env = Environment()
    core, backend = make_core(
        env,
        credit_bytes=1.3,
        partition_overrides={0: 0.3, 1: 0.15},
    )
    # Charge 0.3 and 0.15 concurrently, then return them in order.
    mixed_a = core.create_task(0, 0, 0.3)
    mixed_b = core.create_task(0, 1, 0.15)
    mixed_a.notify_ready()
    mixed_b.notify_ready()
    env.run()
    assert len(backend.started) == 2
    backend.complete(0)
    backend.complete(0)
    env.run()
    # The snap guard must leave the ledger exact, not 1.2999999999....
    assert core.credit == 1.3
    whole = core.create_task(1, 2, 1.3)
    whole.notify_ready()
    env.run()
    assert len(backend.started) == 3  # would be 2 (deadlock) before the fix
    backend.complete()
    env.run()
    assert whole.is_finished
    assert core.credit == 1.3


# -- crash recovery: drain / requeue / blocked nodes -------------------------


class TargetedBackend(ManualBackend):
    """ManualBackend whose chunks target a server chosen by layer parity."""

    def chunk_targets(self, chunk):
        return "s0" if chunk.layer % 2 == 0 else "s1"


def test_drain_refunds_credit_and_cancels_only_the_dead_nodes_flights():
    env = Environment()
    core, backend = make_core(
        env, backend=TargetedBackend(env), credit_bytes=200.0
    )
    to_s0 = core.create_task(0, 0, 80.0)
    to_s1 = core.create_task(0, 1, 60.0)
    to_s0.notify_ready()
    to_s1.notify_ready()
    env.run()
    assert len(backend.started) == 2
    assert core.credit == pytest.approx(60.0)

    drained = core.drain("s0")
    assert [sub.parent.layer for sub in drained] == [0]
    from repro.core.commtask import TaskState

    assert drained[0].state is TaskState.CANCELLED
    # The 80-byte flight's credit came back; s1's 60 stays lent.
    assert core.credit == pytest.approx(140.0)
    assert core.drained_subtasks == 1
    assert core.credit_refunded == pytest.approx(80.0)
    core.check_credit_invariant()


def test_requeue_restores_original_priority():
    env = Environment()
    core, backend = make_core(
        env, backend=TargetedBackend(env), credit_bytes=80.0
    )
    urgent = core.create_task(0, 0, 80.0)  # layer 0 -> s0, highest priority
    urgent.notify_ready()
    env.run()
    drained = core.drain("s0")
    # A later, lower-priority task arrives while s0's work is parked.
    laggard = core.create_task(0, 2, 80.0)
    laggard.notify_ready()
    core.requeue(drained)
    env.run()
    # The requeued layer-0 partition outranks the fresh layer-2 one.
    assert backend.start_order() == [(0, 0), (0, 0)]
    backend.complete(1)  # the replayed copy finishes, freeing credit
    env.run()
    assert backend.start_order() == [(0, 0), (0, 0), (2, 0)]
    core.check_credit_invariant()


def test_requeue_rejects_uncancelled_subtasks():
    env = Environment()
    core, backend = make_core(env, credit_bytes=100.0)
    task = core.create_task(0, 0, 50.0)
    with pytest.raises(SchedulerError, match="expected cancelled"):
        core.requeue(task.subtasks)


def test_cancelled_flights_ignore_late_completions():
    """A transfer that 'completes' after its flight was cancelled (the
    network delivered a copy the scheduler gave up on) must not finish
    the subtask or double-refund credit."""
    env = Environment()
    core, backend = make_core(
        env, backend=TargetedBackend(env), credit_bytes=100.0
    )
    task = core.create_task(0, 0, 70.0)
    task.notify_ready()
    env.run()
    drained = core.drain("s0")
    assert core.credit == pytest.approx(100.0)
    backend.complete()  # the stale handle event fires anyway
    env.run()
    assert not task.is_finished
    assert core.credit == pytest.approx(100.0)  # no double refund
    core.check_credit_invariant()
    core.requeue(drained)
    env.run()
    backend.complete(0)  # the replayed copy
    env.run()
    assert task.is_finished


def test_block_node_parks_queue_heads_until_unblock():
    env = Environment()
    core, backend = make_core(
        env, backend=TargetedBackend(env), credit_bytes=500.0
    )
    core.block_node("s0")
    blocked = core.create_task(0, 0, 50.0)   # targets s0
    flowing = core.create_task(0, 1, 50.0)   # targets s1
    blocked.notify_ready()
    flowing.notify_ready()
    env.run()
    # s0's partition parked without blocking s1's behind it.
    assert backend.start_order() == [(1, 0)]
    assert core.parked == 1
    core.unblock_node("s0")
    env.run()
    assert backend.start_order() == [(1, 0), (0, 0)]
    assert core.parked == 0
    core.check_credit_invariant()


def test_reconfigure_while_over_lent_clamps_and_recovers():
    """Shrinking the credit window below what is already in flight must
    clamp available credit to zero (never negative) and resume normal
    admission once enough refunds arrive — with mixed partition sizes
    in flight (the case that used to push the ledger negative)."""
    env = Environment()
    core, backend = make_core(
        env,
        credit_bytes=200.0,
        partition_overrides={0: 80.0, 1: 80.0},
    )
    small = core.create_task(0, 0, 80.0)
    mixed = core.create_task(0, 1, 120.0)  # even split: 60 + 60
    small.notify_ready()
    mixed.notify_ready()
    env.run()
    assert len(backend.started) == 3  # 80 + 60 + 60 = 200 lent
    core.reconfigure(credit_bytes=50.0)
    assert core.credit == 0.0  # clamped, not -150
    late = core.create_task(0, 2, 40.0)
    late.notify_ready()
    env.run()
    assert len(backend.started) == 3  # over-lent: nothing new admitted
    backend.complete(0)  # refund 80 -> lent 120, still over
    env.run()
    assert core.credit == 0.0
    assert len(backend.started) == 3
    backend.complete(0)  # refund 60 -> lent 60, still over
    env.run()
    assert core.credit == 0.0
    assert len(backend.started) == 3
    backend.complete(0)  # refund 60 -> lent 0 -> credit 50
    env.run()
    assert len(backend.started) == 4  # the 40-byte partition admitted
    core.check_credit_invariant()
    backend.complete(0)
    env.run()
    assert late.is_finished
    assert core.credit == pytest.approx(50.0)
