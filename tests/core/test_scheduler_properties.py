"""Property-based tests: Algorithm 1 invariants under random workloads."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.base import ChunkHandle, CommBackend
from repro.core import ByteSchedulerCore, TaskState
from repro.sim import Environment


class AuditingBackend(CommBackend):
    """Completes chunks after a service time; audits window invariants."""

    is_collective = True

    def __init__(self, env, credit_capacity, service=0.01):
        self.env = env
        self.service = service
        self.credit_capacity = credit_capacity
        self.inflight_bytes = 0.0
        self.max_inflight_bytes = 0.0
        self.max_single = 0.0
        self.starts = []  # (time, layer, chunk_index, size)

    @property
    def workers(self):
        return ("m0",)

    def start_chunk(self, chunk):
        self.inflight_bytes += chunk.size
        self.max_inflight_bytes = max(self.max_inflight_bytes, self.inflight_bytes)
        self.max_single = max(self.max_single, chunk.size)
        self.starts.append((self.env.now, chunk.layer, chunk.chunk_index, chunk.size))
        completion = self.env.timeout(self.service, value=chunk)
        completion.callbacks.append(self._release(chunk))
        return ChunkHandle(sent=completion, done=completion)

    def _release(self, chunk):
        def _done(_evt):
            self.inflight_bytes -= chunk.size

        return _done


task_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=9),       # layer / priority
        st.floats(min_value=1.0, max_value=5_000.0), # size
        st.floats(min_value=0.0, max_value=0.05),    # ready delay
    ),
    min_size=1,
    max_size=12,
)


@given(
    tasks=task_strategy,
    partition=st.floats(min_value=50.0, max_value=2_000.0),
    credit=st.floats(min_value=100.0, max_value=5_000.0),
)
@settings(max_examples=60, deadline=None)
def test_all_tasks_finish_and_window_is_respected(tasks, partition, credit):
    env = Environment()
    backend = AuditingBackend(env, credit_capacity=credit)
    core = ByteSchedulerCore(
        env, backend, partition_bytes=partition, credit_bytes=credit
    )

    created = []
    for index, (layer, size, delay) in enumerate(tasks):
        task = core.create_task(index, layer, size)
        created.append(task)

        def make_ready(task=task):
            return lambda _evt: task.notify_ready()

        env.timeout(delay).callbacks.append(make_ready())
    env.run()

    # 1. Liveness: everything completes.
    assert all(task.is_finished for task in created)
    assert all(
        sub.state is TaskState.FINISHED for task in created for sub in task.subtasks
    )
    # 2. The credit window is never exceeded except by one uncharged
    #    oversized chunk (the escape clause admits a chunk larger than
    #    the whole window when the sender is idle, without charging it).
    allowed = credit + backend.max_single
    assert backend.max_inflight_bytes <= allowed + 1e-6
    # 3. Conservation: started bytes equal the sum of task sizes.
    started = sum(size for _t, _l, _c, size in backend.starts)
    assert math.isclose(started, sum(size for _l, size, _d in tasks), rel_tol=1e-9)
    # 4. Every subtask starts exactly once.
    assert len(backend.starts) == sum(len(task.subtasks) for task in created)


@given(
    sizes=st.lists(st.floats(min_value=1.0, max_value=1e7), min_size=1, max_size=8),
    unit=st.floats(min_value=1e3, max_value=1e7),
)
@settings(max_examples=80, deadline=None)
def test_partition_conserves_bytes_and_respects_unit(sizes, unit):
    env = Environment()
    backend = AuditingBackend(env, credit_capacity=math.inf)
    core = ByteSchedulerCore(env, backend, partition_bytes=unit)
    for index, size in enumerate(sizes):
        task = core.create_task(index, 0, size)
        assert math.isclose(
            sum(sub.size for sub in task.subtasks), size, rel_tol=1e-9
        )
        assert all(sub.size <= unit * (1 + 1e-9) for sub in task.subtasks)
        assert len(task.subtasks) == math.ceil(size / unit) or size <= unit


@given(tasks=task_strategy)
@settings(max_examples=40, deadline=None)
def test_priority_order_when_everything_ready_together(tasks):
    """If all tasks are ready at t=0 and chunks drain one at a time, the
    start order must be sorted by (priority, readiness sequence)."""
    env = Environment()
    backend = AuditingBackend(env, credit_capacity=1.0, service=0.001)
    # Credit of one byte: the escape clause serialises chunks strictly.
    core = ByteSchedulerCore(env, backend, partition_bytes=None, credit_bytes=1.0)
    for index, (layer, size, _delay) in enumerate(tasks):
        core.create_task(index, layer, size).notify_ready()
    env.run()
    layers_started = [layer for _t, layer, _c, _s in backend.starts]
    assert layers_started == sorted(layers_started)


@given(
    tasks=task_strategy,
    partition=st.floats(min_value=50.0, max_value=2_000.0),
)
@settings(max_examples=30, deadline=None)
def test_determinism_of_schedule(tasks, partition):
    """Two identical runs produce identical start traces."""

    def run():
        env = Environment()
        backend = AuditingBackend(env, credit_capacity=2_000.0)
        core = ByteSchedulerCore(
            env, backend, partition_bytes=partition, credit_bytes=2_000.0
        )
        for index, (layer, size, delay) in enumerate(tasks):
            task = core.create_task(index, layer, size)
            env.timeout(delay).callbacks.append(
                lambda _evt, t=task: t.notify_ready()
            )
        env.run()
        return backend.starts

    assert run() == run()


# -- fault-plan invariants --------------------------------------------------


def _build_windows(parts):
    """(gap, duration, rate) triples → sorted disjoint fault windows."""
    windows, clock = [], 0.0
    for gap, duration, rate in parts:
        start = clock + gap
        end = start + duration
        windows.append((start, end, rate))
        clock = end
    return tuple(windows)


window_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=0.04),    # gap before the window
        st.floats(min_value=0.001, max_value=0.05),  # window duration
        st.floats(min_value=0.0, max_value=1.0),     # rate factor (0=blackout)
    ),
    max_size=4,
).map(_build_windows)


class FaultedAuditingBackend(AuditingBackend):
    """AuditingBackend whose service rate degrades inside fault windows
    and which audits the credit ledger at every scheduling event."""

    def __init__(self, env, credit_capacity, windows, service=0.01):
        super().__init__(env, credit_capacity, service)
        self.windows = windows
        self.core = None
        self.ledger_violations = []

    def audit(self):
        core = self.core
        if core is None:
            return
        if not -1e-9 <= core.credit <= core.credit_capacity + 1e-9:
            self.ledger_violations.append((self.env.now, core.credit))

    def start_chunk(self, chunk):
        from repro.faults import degraded_finish

        self.audit()
        self.inflight_bytes += chunk.size
        self.max_inflight_bytes = max(self.max_inflight_bytes, self.inflight_bytes)
        self.max_single = max(self.max_single, chunk.size)
        self.starts.append((self.env.now, chunk.layer, chunk.chunk_index, chunk.size))
        end = degraded_finish(self.env.now, self.service, self.windows)
        completion = self.env.timeout(end - self.env.now, value=chunk)
        completion.callbacks.append(self._release(chunk))
        completion.callbacks.append(lambda _evt: self.audit())
        return ChunkHandle(sent=completion, done=completion)


@given(
    tasks=task_strategy,
    partition=st.floats(min_value=50.0, max_value=2_000.0),
    credit=st.floats(min_value=100.0, max_value=5_000.0),
    windows=window_strategy,
)
@settings(max_examples=60, deadline=None)
def test_fault_windows_preserve_ledger_and_liveness(tasks, partition, credit, windows):
    """Under any disjoint set of degradation/blackout windows: the credit
    ledger never goes negative, never exceeds capacity, and every
    SubCommTask still finishes."""
    env = Environment()
    backend = FaultedAuditingBackend(env, credit_capacity=credit, windows=windows)
    core = ByteSchedulerCore(
        env, backend, partition_bytes=partition, credit_bytes=credit
    )
    backend.core = core

    created = []
    for index, (layer, size, delay) in enumerate(tasks):
        task = core.create_task(index, layer, size)
        created.append(task)
        env.timeout(delay).callbacks.append(
            lambda _evt, t=task: t.notify_ready()
        )
    env.run()

    assert backend.ledger_violations == []
    assert all(task.is_finished for task in created)
    assert all(
        sub.state is TaskState.FINISHED for task in created for sub in task.subtasks
    )
    # With everything drained the full window must be back, exactly.
    assert core.inflight == 0
    assert core.credit == credit
    # Faults slow transfers but never admit extra in-flight bytes.
    assert backend.max_inflight_bytes <= credit + backend.max_single + 1e-6


@given(
    tasks=task_strategy,
    windows=window_strategy,
)
@settings(max_examples=30, deadline=None)
def test_faulted_schedule_is_deterministic(tasks, windows):
    """The same fault windows applied twice yield identical start traces."""

    def run():
        env = Environment()
        backend = FaultedAuditingBackend(env, credit_capacity=1_500.0, windows=windows)
        core = ByteSchedulerCore(
            env, backend, partition_bytes=300.0, credit_bytes=1_500.0
        )
        backend.core = core
        for index, (layer, size, delay) in enumerate(tasks):
            task = core.create_task(index, layer, size)
            env.timeout(delay).callbacks.append(
                lambda _evt, t=task: t.notify_ready()
            )
        env.run()
        return backend.starts

    assert run() == run()
