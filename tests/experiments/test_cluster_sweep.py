"""Tests for the cluster-scale placement × arbitration sweep."""

from repro.experiments import cluster


def small_sweep():
    return cluster.run(jobs=40, seeds=(0, 1))


def test_sweep_covers_all_four_corners_per_seed():
    sweep = small_sweep()
    assert set(sweep.cells) == {
        (placement, arbitration)
        for placement in ("random", "consolidation")
        for arbitration in ("uncoordinated", "arbitrated")
    }
    for summaries in sweep.cells.values():
        assert len(summaries) == 2
        for summary in summaries:
            assert summary["jobs"] == 40


def test_sweep_is_deterministic():
    assert small_sweep().cells == small_sweep().cells


def test_sweep_verdicts_match_acceptance_criteria():
    sweep = small_sweep()
    for arbitration in ("uncoordinated", "arbitrated"):
        assert sweep.consolidation_jct_gain(arbitration) > 0
    for placement in ("random", "consolidation"):
        assert sweep.arbitration_fairness_gain(placement) > 0


def test_format_result_reports_table_and_verdict():
    text = cluster.format_result(small_sweep())
    assert "cluster sweep" in text
    assert "consolidation" in text and "arbitrated" in text
    assert "Jain fairness" in text
    assert "cuts mean JCT" in text and "lifts Jain fairness" in text
