"""Direct unit tests for the §7 co-scheduling experiment."""

import pytest

from repro.experiments import coscheduling
from repro.experiments.coscheduling import CoSchedulingResult
from repro.training import ClusterSpec


def synthetic_result():
    result = CoSchedulingResult(model_a="vgg16", model_b="transformer")
    result.isolated[("fifo", "vgg16")] = 100.0
    result.colocated[("fifo", "vgg16")] = 60.0
    result.isolated[("fifo", "transformer")] = 50.0
    result.colocated[("fifo", "transformer")] = 45.0
    result.isolated[("bytescheduler", "vgg16")] = 120.0
    result.colocated[("bytescheduler", "vgg16")] = 90.0
    result.isolated[("bytescheduler", "transformer")] = 60.0
    result.colocated[("bytescheduler", "transformer")] = 48.0
    return result


def test_slowdown_is_fraction_of_isolated_speed():
    result = synthetic_result()
    assert result.slowdown("fifo", "vgg16") == pytest.approx(0.4)
    assert result.slowdown("fifo", "transformer") == pytest.approx(0.1)
    assert result.slowdown("bytescheduler", "vgg16") == pytest.approx(0.25)
    assert result.slowdown("bytescheduler", "transformer") == pytest.approx(0.2)


def test_spec_selection():
    cluster = ClusterSpec(machines=4, transport="rdma", arch="ps", framework="mxnet")
    fifo = coscheduling._spec("fifo", "vgg16", cluster)
    assert fifo.kind == "fifo"
    tuned = coscheduling._spec("bytescheduler", "vgg16", cluster)
    assert tuned.kind == "bytescheduler"
    assert tuned.partition_bytes is not None and tuned.partition_bytes > 0
    assert tuned.credit_bytes is not None and tuned.credit_bytes > 0


def test_format_result_on_synthetic_data():
    text = coscheduling.format_result(synthetic_result())
    assert "co-scheduling" in text
    assert "fifo" in text and "bytescheduler" in text
    assert "vgg16" in text and "transformer" in text
    assert "-40%" in text and "-25%" in text


def test_small_run_shows_interference():
    result = coscheduling.run(
        model_a="alexnet", model_b="alexnet", machines=2, measure=2
    )
    for kind in ("fifo", "bytescheduler"):
        isolated = result.isolated[(kind, "alexnet")]
        colocated = result.colocated[(kind, "alexnet")]
        assert isolated > 0 and colocated > 0
        # Sharing one fabric can only hurt (or tie, at the resolution
        # of the simulation): the co-located speed never beats isolated.
        assert colocated <= isolated * 1.001
        assert 0.0 <= result.slowdown(kind, "alexnet") < 1.0
