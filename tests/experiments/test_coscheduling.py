"""Direct unit tests for the §7 co-scheduling experiment."""

import pytest

from repro.errors import ConfigError
from repro.experiments import coscheduling
from repro.experiments.coscheduling import CoSchedulingResult
from repro.training import ClusterSpec


def synthetic_result():
    result = CoSchedulingResult(model_a="vgg16", model_b="transformer")
    result.isolated[("fifo", "vgg16")] = 100.0
    result.colocated[("fifo", "vgg16")] = 60.0
    result.isolated[("fifo", "transformer")] = 50.0
    result.colocated[("fifo", "transformer")] = 45.0
    result.isolated[("bytescheduler", "vgg16")] = 120.0
    result.colocated[("bytescheduler", "vgg16")] = 90.0
    result.isolated[("bytescheduler", "transformer")] = 60.0
    result.colocated[("bytescheduler", "transformer")] = 48.0
    return result


def test_slowdown_is_fraction_of_isolated_speed():
    result = synthetic_result()
    assert result.slowdown("fifo", "vgg16") == pytest.approx(0.4)
    assert result.slowdown("fifo", "transformer") == pytest.approx(0.1)
    assert result.slowdown("bytescheduler", "vgg16") == pytest.approx(0.25)
    assert result.slowdown("bytescheduler", "transformer") == pytest.approx(0.2)


def test_spec_selection():
    cluster = ClusterSpec(machines=4, transport="rdma", arch="ps", framework="mxnet")
    fifo = coscheduling._spec("fifo", "vgg16", cluster)
    assert fifo.kind == "fifo"
    tuned = coscheduling._spec("bytescheduler", "vgg16", cluster)
    assert tuned.kind == "bytescheduler"
    assert tuned.partition_bytes is not None and tuned.partition_bytes > 0
    assert tuned.credit_bytes is not None and tuned.credit_bytes > 0


def test_format_result_on_synthetic_data():
    text = coscheduling.format_result(synthetic_result())
    assert "co-scheduling" in text
    assert "fifo" in text and "bytescheduler" in text
    assert "vgg16" in text and "transformer" in text
    assert "-40%" in text and "-25%" in text


class FakeJob:
    """Just enough of TrainingJob for _speed(): markers + batch size."""

    class _Model:
        sample_unit = "images"

    def __init__(self, markers):
        self.markers = markers
        self.samples_per_iteration = 32.0
        self.model = self._Model()


def test_speed_with_zero_warmup_measures_forward_window():
    """Regression: ``times[warmup - 1]`` wrapped to the *last* marker
    when warmup=0, producing a negative window.  The clamped window
    measures from iteration 0."""
    job = FakeJob({"w0": [1.0, 2.0, 3.0]})
    speed = coscheduling._speed(job, warmup=0, measure=3)
    # Window [1.0, 2.0, 3.0]: two 1 s gaps -> 32 samples/s.
    assert speed == pytest.approx(32.0)


def test_speed_uses_slowest_worker_markers():
    """Regression: reading workers[0] over-reported speed whenever
    another worker lagged (the slowest-worker convention of
    TrainingResult applies to co-located jobs too)."""
    fast_only = FakeJob({"w0": [1.0, 2.0, 3.0]})
    with_straggler = FakeJob(
        {"w0": [1.0, 2.0, 3.0], "w1": [1.0, 3.0, 5.0]}
    )
    assert coscheduling._speed(with_straggler, 1, 2) == pytest.approx(
        coscheduling._speed(fast_only, 1, 2) / 2
    )


def test_run_rejects_negative_warmup():
    with pytest.raises(ConfigError):
        coscheduling.run(warmup=-1)


def test_warmup_zero_run_end_to_end():
    result = coscheduling.run(
        model_a="alexnet", model_b="alexnet", machines=2, measure=2, warmup=0
    )
    for kind in ("fifo", "bytescheduler"):
        assert result.isolated[(kind, "alexnet")] > 0
        assert result.colocated[(kind, "alexnet")] > 0
        # A negative window would push the slowdown far outside [0, 1).
        assert 0.0 <= result.slowdown(kind, "alexnet") < 1.0


def test_small_run_shows_interference():
    result = coscheduling.run(
        model_a="alexnet", model_b="alexnet", machines=2, measure=2
    )
    for kind in ("fifo", "bytescheduler"):
        isolated = result.isolated[(kind, "alexnet")]
        colocated = result.colocated[(kind, "alexnet")]
        assert isolated > 0 and colocated > 0
        # Sharing one fabric can only hurt (or tie, at the resolution
        # of the simulation): the co-located speed never beats isolated.
        assert colocated <= isolated * 1.001
        assert 0.0 <= result.slowdown(kind, "alexnet") < 1.0
