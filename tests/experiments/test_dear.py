"""The DeAR four-way sweep and its integrity matrix.

Fast lane: a small-scale sweep smoke plus one integrity scenario, so
the experiment entry points cannot rot between nightlies.  Slow lane
(nightly via `pytest -m slow`): the full DeAR fault matrix must
converge to the fault-free digest at several seeds — the digest proves
no deferred all-gather was lost, double-counted, or reordered into the
ledger under faults.
"""

import pytest

from repro.experiments import dear, faults


def test_dear_sweep_smoke():
    result = dear.run(machines=2, measure=2, transports=("tcp",))
    speeds = result.speeds["tcp"]
    assert set(speeds) == set(dear.SCHEDULERS)
    assert all(speed > 0 for speed in speeds.values())
    # Phase counters recorded for both DeAR variants only.
    assert set(result.phase_stats["tcp"]) == {"dear", "dear+fusion"}
    stats = result.phase_stats["tcp"]["dear"]
    assert stats["reduce_scatters"] == stats["all_gathers"]
    assert stats["tensors"] >= stats["reduce_scatters"]


def test_dear_sweep_format():
    result = dear.run(machines=2, measure=2, transports=("tcp",))
    text = dear.format_result(result)
    assert "DeAR four-way comparison" in text
    for kind in dear.SCHEDULERS:
        assert kind in text
    assert "reduce-scatters" in text


def test_dear_wins_tcp_theta_regime_at_experiment_scale():
    """The sweep reproduces the acceptance bar: knob-free DeAR beats
    vanilla fifo where per-collective sync cost dominates."""
    result = dear.run(machines=2, measure=2, transports=("tcp",))
    assert result.speedup("tcp", "dear") > 1.0


def test_dear_integrity_smoke():
    result = faults.run_dear_integrity(
        machines=2,
        measure=2,
        scenarios=(("combined", faults.DEAR_INTEGRITY_SCENARIOS[3][1]),),
    )
    assert result.clean()
    text = faults.format_dear_integrity(result)
    assert "combined" in text and "digest" in text


@pytest.mark.slow
def test_dear_integrity_full():
    result = faults.run_dear_integrity(machines=2, measure=3)
    assert [cell.scenario for cell in result.cells] == [
        name for name, _spec in faults.DEAR_INTEGRITY_SCENARIOS
    ]
    for cell in result.cells:
        assert cell.digest_matches, cell.scenario
        assert cell.accounted, (cell.scenario, cell.counters)
        assert cell.violations == 0, cell.scenario
    # Every fault kind actually fired somewhere in the matrix.
    totals = {
        key: sum(cell.counters.get(key, 0) for cell in result.cells)
        for key in ("corrupt_injected", "dup_injected", "reorder_injected")
    }
    assert all(count > 0 for count in totals.values()), totals


@pytest.mark.slow
@pytest.mark.parametrize("seed", [3, 11, 29])
def test_dear_integrity_other_seeds(seed):
    result = faults.run_dear_integrity(machines=2, measure=2, seed=seed)
    assert result.clean()
