"""The drift-robustness experiment: specs, epochs, determinism, verdict.

Fast lane: the pure plan/epoch arithmetic, the CLI wiring, and a
small-scale digest-determinism check across both event-queue kernels.
Slow lane (nightly): the full ``reproduce drift --fast`` verdict — the
adaptive tuner's regret ordering against static/online/oracle.
"""

import pytest

from repro.experiments import drift
from repro.faults import FaultPlan
from repro.invariants import ChaosOracle
from repro.models import custom_model
from repro.training import ClusterSpec, SchedulerSpec, TrainingJob
from repro.tuning import AdaptiveTuner, PageHinkley, SearchSpace
from repro.units import MB


def test_drift_plan_specs_parse_for_all_scenarios():
    for scenario in drift.SCENARIOS:
        plan = FaultPlan.parse(drift.drift_plan_spec(scenario, 24.0, seed=7))
        assert plan.seed == 7
        if scenario == "step":
            assert plan.link_faults and not plan.drift
        else:
            assert plan.drift and not plan.link_faults


def test_walk_scenario_targets_the_workers_compute():
    plan = FaultPlan.parse(drift.drift_plan_spec("walk", 24.0, seed=0))
    fault = plan.drift[0]
    assert fault.kind == "walk"
    assert fault.node == drift.WALK_NODE
    assert fault.direction == ""  # compute walk, not a link walk
    # The drifting link stays healthy: the knob landscape is flat.
    assert plan.drift_link_windows(drift.DRIFT_NODE, "up") == ()


def test_unknown_scenario_rejected():
    with pytest.raises(ValueError, match="unknown drift scenario"):
        drift.drift_plan_spec("meteor", 24.0, seed=0)


def test_epoch_table_tiles_the_horizon():
    for scenario in drift.SCENARIOS:
        epochs = drift.epoch_table(scenario, 24.0, seed=0)
        assert epochs[0][0] == 0.0
        assert epochs[-1][1] == pytest.approx(24.0)
        for (_, end, _), (start, _, _) in zip(epochs, epochs[1:]):
            assert start == pytest.approx(end)


def test_diurnal_epochs_reach_the_trough_and_open_healthy():
    epochs = drift.epoch_table("diurnal", 24.0, seed=0)
    factors = [factor for _, _, factor in epochs]
    assert all(0.15 <= factor <= 1.0 for factor in factors)
    assert factors[0] > 0.9  # healthy lead-in for the static policy
    assert min(factors) < 0.45  # the trough actually bites


def test_step_epochs_split_at_the_onset():
    epochs = drift.epoch_table("step", 24.0, seed=0)
    assert len(epochs) == 2
    (_, onset, before), (_, _, after) = epochs
    assert onset == pytest.approx(3.0)
    assert before == pytest.approx(1.0)
    assert after == pytest.approx(0.3)


def test_walk_epochs_report_compute_multipliers():
    epochs = drift.epoch_table("walk", 24.0, seed=1)
    factors = [factor for _, _, factor in epochs]
    assert all(factor >= 1.0 for factor in factors)  # multipliers, not rates
    assert factors[0] == pytest.approx(1.0)  # healthy lead-in


def test_epoch_table_is_seed_deterministic():
    assert drift.epoch_table("background", 24.0, seed=3) == drift.epoch_table(
        "background", 24.0, seed=3
    )
    walk_a = drift.epoch_table("walk", 24.0, seed=3)
    walk_b = drift.epoch_table("walk", 24.0, seed=4)
    assert walk_a != walk_b  # the seed actually feeds the walk


def test_cli_accepts_the_drift_target():
    from repro.cli import build_parser

    args = build_parser().parse_args(["reproduce", "drift", "--fast"])
    assert args.target == "drift"
    assert args.fast


# -- determinism (S6), scaled down to stay in the fast lane ----------------


def _tuned_digest(queue):
    cluster = ClusterSpec(
        machines=2, gpus_per_machine=2, arch="ps", transport="tcp",
        bandwidth_gbps=25, seed=0,
    )
    model = custom_model(
        layer_bytes=[8 * MB, 24 * MB, 4 * MB],
        fp_times=[0.002] * 3,
        bp_times=[0.004] * 3,
        batch_size=16,
    )
    job = TrainingJob(
        model,
        cluster,
        SchedulerSpec(kind="bytescheduler", partition_bytes=2 * MB,
                      credit_bytes=4 * MB),
        fault_plan=FaultPlan.parse("drift:diurnal:s0.both@0-2~2.7x0.3;seed:0"),
        oracle=ChaosOracle(),
    )
    tuner = AdaptiveTuner(
        job,
        space=SearchSpace(1 * MB, 8 * MB, 2 * MB, 32 * MB),
        seed=0,
        segment_iterations=2,
        restart_penalty=0.0,
        detector=PageHinkley(delta=0.01, threshold=0.06),
    )
    tuner.run(segments=8, final_iterations=2)
    job.drain()
    assert job.oracle.violations == 0
    return tuple(job.backend.sync_digest())


def test_adaptive_digest_deterministic_across_runs_and_kernels(monkeypatch):
    digests = set()
    for queue in ("calendar", "heap"):
        monkeypatch.setenv("REPRO_SIM_QUEUE", queue)
        digests.add(_tuned_digest(queue))
        digests.add(_tuned_digest(queue))
    # Two replays per kernel, both kernels: one bit-identical history.
    assert len(digests) == 1


# -- the acceptance verdict (nightly) --------------------------------------


@pytest.mark.slow
def test_reproduce_drift_fast_verdict():
    result = drift.run(fast=True)
    assert result.all_ok, drift.format_result(result)
    cells = {cell.scenario: cell for cell in result.cells}
    assert set(cells) == set(drift.SCENARIOS) | {"determinism"}
    for cell in result.cells:
        if cell.scenario == "determinism":
            continue
        policies = dict(cell.policies)
        assert policies["oracle"][0] == 0.0  # the zero-regret reference
        static, adaptive = cell.regret("static"), cell.regret("adaptive")
        if "flat" not in cell.detail:
            assert adaptive <= 0.5 * static
            assert adaptive <= cell.regret("online") + 1e-6
    text = drift.format_result(result)
    assert "all checks passed" in text
