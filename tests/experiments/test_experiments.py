"""Integration tests for the per-figure experiment harnesses.

Each test runs a scaled-down version of the experiment and asserts the
qualitative result the paper reports — who wins and in what direction —
rather than absolute numbers.
"""


from repro.experiments import (
    PAPER_SETUPS,
    ablations,
    bounds_check,
    extra,
    figure2,
    figure4,
    figure9,
    figure10_12,
    figure14,
    table1,
    tuned_knobs,
)


def test_paper_setups_are_the_five_from_section_6():
    assert len(PAPER_SETUPS) == 5
    assert ("mxnet", "ps", "tcp") in PAPER_SETUPS
    assert ("pytorch", "allreduce", "tcp") in PAPER_SETUPS


def test_tuned_knobs_table_covers_benchmark_models():
    for model in ("vgg16", "resnet50", "transformer"):
        for arch in ("ps", "allreduce"):
            partition, credit = tuned_knobs(model, arch, "rdma")
            assert partition > 0 and credit >= partition


def test_tuned_knobs_nccl_larger_than_ps():
    """Table 1's headline structure."""
    for model in ("vgg16", "resnet50", "transformer"):
        ps_partition, _ = tuned_knobs(model, "ps", "rdma")
        ar_partition, _ = tuned_knobs(model, "allreduce", "rdma")
        assert ar_partition >= 4 * ps_partition


def test_figure2_speedup_close_to_paper():
    result = figure2.run(measure=4)
    assert 0.30 <= result.speedup <= 0.60  # paper: 44.4%
    assert "speed-up" in figure2.format_result(result)


def test_figure4_partition_matters_more_at_high_bandwidth():
    curves = figure4.run_partition_sweep(
        machines=2, measure=2, sizes_kb=(100, 700), bandwidths=(1.0, 10.0)
    )
    gain_low = curves[1.0].y[-1] / curves[1.0].y[0] - 1.0
    gain_high = curves[10.0].y[-1] / curves[10.0].y[0] - 1.0
    assert gain_high > gain_low
    assert gain_high > 0.05


def test_figure4_small_credit_hurts():
    curves = figure4.run_credit_sweep(
        machines=2, measure=2, sizes_kb=(100, 700), bandwidths=(10.0,)
    )
    assert curves[10.0].y[0] < curves[10.0].y[-1]


def test_figure9_trace_shape():
    result = figure9.run(machines=2, samples=5, measure=2)
    assert len(result.sample_credits) == 5
    assert len(result.grid_credits) == len(result.posterior_mean)
    assert all(
        low <= high for low, high in zip(result.ci_low, result.ci_high)
    )
    assert result.best_credit > 0
    assert "BO search" in figure9.format_result(result)


def test_figure10_grid_bytescheduler_wins_everywhere():
    grid = figure10_12.run_model(
        "vgg16",
        machines_list=(2,),
        setups=[("mxnet", "ps", "rdma"), ("mxnet", "allreduce", "rdma")],
        measure=2,
        include_p3=False,
    )
    for subplot in grid.setups:
        low, high = figure10_12.speedup_band(subplot)
        assert low > -0.02  # never meaningfully slower
        assert subplot.linear[0] > 0
    text = figure10_12.format_model_grid(grid)
    assert "bytescheduler" in text


def test_figure10_ps_gains_exceed_allreduce_gains():
    """§6.2: 'ByteScheduler has larger speedup in PS than all-reduce'."""
    grid = figure10_12.run_model(
        "vgg16",
        machines_list=(4,),
        setups=[("mxnet", "ps", "rdma"), ("mxnet", "allreduce", "rdma")],
        measure=2,
        include_p3=False,
    )
    ps_gain = figure10_12.speedup_band(grid.setups[0])[1]
    ar_gain = figure10_12.speedup_band(grid.setups[1])[1]
    assert ps_gain > ar_gain


def test_p3_comparison_ordering():
    """baseline < P3 < ByteScheduler on MXNet PS TCP (§6.2)."""
    comparison = extra.run_p3_comparison(models=("vgg16",), machines=4, measure=2)
    row = comparison.rows["vgg16"]
    assert row["baseline"] < row["p3"] < row["bytescheduler"]
    assert comparison.advantage("vgg16") > 0.1
    assert "P3" in extra.format_p3(comparison)


def test_extra_models_positive():
    result = extra.run_extra_models(models=("alexnet",), machines=2, measure=2)
    assert result.speedups["alexnet"] > 0.2
    assert "AlexNet" in extra.format_extra_models(result)


def test_bounds_check_holds():
    check = bounds_check.run(machines=2, partitions_mb=(8, 32), measure=2)
    assert all(check.within_bound())
    assert check.ideal > 0
    assert "bounds check" in bounds_check.format_result(check)


def test_credit_ablation_orders_variants():
    result = ablations.credit_ablation(machines=2, measure=2)
    assert result.speeds["tuned credit"] >= result.speeds["stop-and-wait (credit=δ)"]
    assert "stop-and-wait" in ablations.format_ablation(result)


def test_partition_ablation_prefers_partitioning():
    result = ablations.partition_ablation(machines=2, measure=2)
    assert result.speeds["partitioned (tuned δ)"] > result.speeds["whole tensors"]


def test_barrier_ablation_crossing_required():
    """§3.4: without crossing, scheduling on a barrier engine is
    largely ineffective."""
    result = ablations.barrier_ablation(machines=2, measure=2)
    crossed = result.speeds["scheduled, barrier crossed"]
    kept = result.speeds["scheduled, barrier kept"]
    base = result.speeds["baseline (FIFO + barrier)"]
    assert crossed > kept
    assert crossed > base


def test_sharding_ablation_balanced_beats_naive():
    result = ablations.sharding_ablation(machines=2, measure=2)
    naive = result.speeds["whole-tensor round robin"]
    chunked = result.speeds["chunk round robin"]
    assert chunked > naive


def test_figure14_bo_beats_random_on_average():
    costs = figure14.run_combo(
        "vgg16",
        "ps",
        machines=2,
        seeds=(0, 1),
        cap=25,
        grid_resolution=4,
        measure=2,
        methods=("bo", "random"),
    )
    assert costs.mean_trials["bo"] <= costs.mean_trials["random"] + 5
    assert costs.optimum_speed > 0


def test_table1_runs_and_orders():
    result = table1.run(
        models=("vgg16",), archs=("ps", "allreduce"), machines=2, trials=6
    )
    assert result.partition_mb("allreduce", "vgg16") > result.partition_mb("ps", "vgg16")
    assert "Table 1" in table1.format_result(result)


def test_fusion_ablation_wins_on_small_tensors():
    result = ablations.fusion_ablation(machines=8, measure=2)
    assert (
        result.speeds["horovod fusion (64 MB buffer)"]
        > result.speeds["per-tensor FIFO (no fusion)"]
    )
