"""Tests for the §7 extension experiments (scaled down)."""

from repro.experiments import extensions


def test_per_layer_partitions_runs_and_reports():
    result = extensions.per_layer_partitions(machines=2, measure=2)
    assert result.uniform_speed > 0
    assert result.per_layer_speed > 0
    assert len(result.policy) > 0
    text = extensions.format_per_layer(result)
    assert "per-layer" in text


def test_online_tuning_recovers_from_bad_knobs():
    result = extensions.online_tuning_trajectory(machines=2, segments=5)
    assert result.final_speed > result.initial_speed
    assert len(result.segments) == 5
    assert "online re-tuning" in extensions.format_online(result)


def test_online_tuning_ps_charges_restarts():
    result = extensions.online_tuning_trajectory(
        machines=2, arch="ps", segments=4
    )
    assert result.restart_overhead > 0


def test_async_speedup_same_league_as_sync():
    result = extensions.async_vs_sync(machines=2, measure=2)
    assert result.sync_speedup > 0.2
    assert result.async_speedup > 0.2
    assert "async" in extensions.format_async(result)


def test_coscheduling_shows_interference():
    from repro.experiments import coscheduling

    result = coscheduling.run(machines=2, measure=3)
    worst = max(
        result.slowdown(kind, model)
        for kind in ("fifo", "bytescheduler")
        for model in (result.model_a, result.model_b)
    )
    assert worst > 0.05
    assert "co-scheduling" in coscheduling.format_result(result)


def test_coscheduled_jobs_each_complete_all_iterations():
    from repro.experiments import coscheduling

    result = coscheduling.run(machines=2, measure=2)
    for key, speed in result.colocated.items():
        assert speed > 0, key
