"""The nightly integrity matrix: corrupt x dup x reorder x crash.

Slow lane (run nightly via `pytest -m slow`): every cell of the seeded
matrix must converge to the fault-free parameter digest with balanced
fault accounting and a silent chaos oracle.  The fast lane keeps one
smoke test so the experiment entry point cannot rot between nightlies.
"""

import pytest

from repro.experiments import faults


def test_integrity_matrix_smoke():
    result = faults.run_integrity(
        model="alexnet",
        machines=2,
        measure=2,
        scenarios=(("combined", faults.INTEGRITY_SCENARIOS[3][1]),),
    )
    assert result.clean()
    text = faults.format_integrity(result)
    assert "Transfer integrity matrix" in text and "combined" in text


@pytest.mark.slow
def test_integrity_matrix_full():
    result = faults.run_integrity(machines=2, measure=3)
    assert [cell.scenario for cell in result.cells] == [
        name for name, _spec in faults.INTEGRITY_SCENARIOS
    ]
    for cell in result.cells:
        assert cell.digest_matches, cell.scenario
        assert cell.accounted, (cell.scenario, cell.counters)
        assert cell.violations == 0, cell.scenario
    # Every fault kind actually fired somewhere in the matrix.
    totals = {
        key: sum(cell.counters[key] for cell in result.cells)
        for key in ("corrupt_injected", "dup_injected", "reorder_injected")
    }
    assert all(count > 0 for count in totals.values()), totals
    # Injected == detected + lost, account closed matrix-wide.
    assert sum(
        cell.counters["corrupt_detected"] + cell.counters["corrupt_lost"]
        for cell in result.cells
    ) == totals["corrupt_injected"]


@pytest.mark.slow
@pytest.mark.parametrize("seed", [3, 11, 29])
def test_integrity_matrix_other_seeds(seed):
    result = faults.run_integrity(
        model="alexnet", machines=2, measure=2, seed=seed
    )
    assert result.clean()
