"""Parallel trial runner: determinism, cache round-trips, session wiring."""

import json

import pytest

from repro.experiments import parallel as par
from repro.training import ClusterSpec, SchedulerSpec, run_experiment

CLUSTER = ClusterSpec(machines=2, gpus_per_machine=2)
FIFO = SchedulerSpec(kind="fifo")
BS = SchedulerSpec(kind="bytescheduler", partition_bytes=2e6, credit_bytes=8e6)


def specs():
    return [
        par.TrialSpec(model="resnet50", cluster=CLUSTER, scheduler=FIFO,
                      measure=2, warmup=1),
        par.TrialSpec(model="resnet50", cluster=CLUSTER, scheduler=BS,
                      measure=2, warmup=1),
        par.TrialSpec(model="vgg16", cluster=CLUSTER, scheduler=FIFO,
                      measure=2, warmup=1),
    ]


def test_trial_key_stable_and_distinct():
    trials = specs()
    keys = [par.trial_key(spec) for spec in trials]
    assert len(set(keys)) == len(keys)
    assert keys == [par.trial_key(spec) for spec in trials]
    assert all(len(key) == 64 for key in keys)


def test_serial_payloads_carry_report_digest():
    payloads = par.run_trials(specs()[:1])
    payload = payloads[0]
    assert payload["schema"] == par.TRIAL_SCHEMA
    assert len(payload["report_digest"]) == 64
    result = par.result_from_payload(payload)
    assert result.speed > 0


def test_payload_roundtrip_matches_direct_run():
    spec = specs()[0]
    direct = run_experiment(
        spec.model, spec.cluster, spec.scheduler,
        measure=spec.measure, warmup=spec.warmup, cache=False,
    )
    rebuilt = par.result_from_payload(par.execute_trial(spec))
    assert rebuilt.speed == direct.speed
    assert rebuilt.markers == direct.markers


@pytest.mark.parametrize("workers", [2, 3])
def test_pool_bit_identical_to_serial(workers):
    """The contract the sweeps rely on: fan-out changes nothing."""
    serial = par.run_trials(specs())
    pooled = par.run_trials(specs(), workers=workers)
    assert pooled == serial
    assert [p["report_digest"] for p in pooled] == [
        s["report_digest"] for s in serial
    ]


def test_cache_roundtrip_and_hit_counting(tmp_path):
    cache = par.ResultCache(tmp_path)
    spec = specs()[0]
    first = par.execute_trial(spec, cache=cache)
    assert cache.misses == 1 and cache.hits == 0
    second = par.execute_trial(spec, cache=cache)
    assert cache.hits == 1
    assert second == first
    # The entry is plain JSON on disk, keyed by the trial hash.
    key = par.trial_key(spec)
    stored = json.loads((tmp_path / key[:2] / f"{key}.json").read_text())
    assert stored == first


def test_cache_ignores_stale_schema(tmp_path):
    cache = par.ResultCache(tmp_path)
    spec = specs()[0]
    payload = par.execute_trial(spec, cache=cache)
    key = par.trial_key(spec)
    stale = dict(payload, schema=par.TRIAL_SCHEMA - 1)
    cache.put(key, stale)
    assert cache.get(key) is None  # stale entry is a miss, not a crash


def test_run_experiment_uses_session_cache(tmp_path):
    spec = specs()[0]
    plain = run_experiment(
        spec.model, spec.cluster, spec.scheduler,
        measure=spec.measure, warmup=spec.warmup,
    )
    with par.session(cache_dir=tmp_path):
        cold = run_experiment(
            spec.model, spec.cluster, spec.scheduler,
            measure=spec.measure, warmup=spec.warmup,
        )
        cache = par.active_cache()
        warm = run_experiment(
            spec.model, spec.cluster, spec.scheduler,
            measure=spec.measure, warmup=spec.warmup,
        )
        assert cache.hits >= 1
    assert cold.speed == plain.speed == warm.speed
    assert par.active_cache() is None  # session cleaned up


def test_unplain_runs_bypass_cache(tmp_path):
    spec = specs()[0]
    with par.session(cache_dir=tmp_path):
        reported = run_experiment(
            spec.model, spec.cluster, spec.scheduler,
            measure=spec.measure, warmup=spec.warmup, report=True,
        )
        cache = par.active_cache()
        assert reported.report is not None
        assert cache.hits == 0 and cache.misses == 0


def test_figure_grid_identical_serial_pool_and_cached(tmp_path):
    """End-to-end determinism at the figure level (the acceptance bar)."""
    from repro.experiments import figure10_12

    kwargs = dict(
        machines_list=(1, 2),
        setups=(("mxnet", "ps", "rdma"),),
        measure=2,
        include_p3=False,
    )
    serial = figure10_12.run_model("resnet50", **kwargs)
    pooled = figure10_12.run_model("resnet50", workers=2, **kwargs)
    cached_cold = figure10_12.run_model(
        "resnet50", cache_dir=str(tmp_path), **kwargs
    )
    cached_warm = figure10_12.run_model(
        "resnet50", cache_dir=str(tmp_path), **kwargs
    )
    assert pooled == serial
    assert cached_cold == serial
    assert cached_warm == serial
