"""Tests for the one-shot reproduction report."""

import io

from repro.experiments.report import SECTIONS, generate_report


def test_sections_cover_every_artefact():
    titles = " ".join(title for title, _runner in SECTIONS)
    for token in (
        "Figure 2", "Figure 4", "Figure 9", "10-12", "Figure 13",
        "Figure 14", "Table 1", "P3", "bounds", "Ablations",
        "extensions", "co-scheduling",
    ):
        assert token in titles, token


def test_generate_report_filtered_section():
    stream = io.StringIO()
    text = generate_report(fast=True, stream=stream, sections=["Figure 2"])
    assert "# ByteScheduler reproduction report" in text
    assert "44.4%" in text
    assert "Figure 14" not in text
    assert "[report] Figure 2" in stream.getvalue()


def test_generate_report_table1_section():
    text = generate_report(fast=True, sections=["Table 1"])
    assert "Table 1: best partition/credit sizes" in text


def test_generate_report_writes_json_index(tmp_path):
    import json

    path = tmp_path / "report.json"
    generate_report(fast=True, sections=["Figure 2"], json_out=str(path))
    data = json.loads(path.read_text())
    assert data["generator"] == "repro.experiments.report"
    assert data["fast"] is True
    assert len(data["sections"]) == 1
    section = data["sections"][0]
    assert section["title"].startswith("Figure 2")
    assert section["status"] == "ok"
    assert "44.4%" in section["body"]
    assert data["total_seconds"] >= 0.0


def test_generate_json_report_matches_markdown_sections():
    from repro.experiments.report import generate_json_report

    data = generate_json_report(fast=True, sections=["Figure 2"])
    assert [s["title"] for s in data["sections"]] == [
        "Figure 2 — contrived example"
    ]
