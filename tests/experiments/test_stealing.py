"""Multi-host work stealing: shard math, claims, leases, assembly, CLI.

The protocol is advisory (trials are deterministic, cache writes are
atomic), so correctness here means: every shard returns the identical
full result list, claims never linger after a run, stale leases are
recoverable, and a shard that can neither compute nor fetch a trial
fails loudly instead of hanging forever.
"""

import os
import time

import pytest

from repro.cli import main
from repro.errors import ConfigError
from repro.experiments.parallel import (
    ResultCache,
    TrialSpec,
    run_trials,
    session,
    trial_key,
)
from repro.experiments.stealing import (
    ClaimBoard,
    ShardSpec,
    _Heartbeat,
    default_owner,
    run_trials_sharded,
)
from repro.models import custom_model
from repro.training import ClusterSpec, SchedulerSpec
from repro.units import MB


def tiny_specs(n=4):
    specs = []
    for seed in range(n):
        model = custom_model(
            layer_bytes=[1 * MB, 2 * MB],
            fp_times=[0.001, 0.001],
            bp_times=[0.002, 0.002],
            batch_size=8,
        )
        specs.append(
            TrialSpec(
                model=model,
                cluster=ClusterSpec(
                    machines=2, gpus_per_machine=1,
                    bandwidth_gbps=10, seed=seed,
                ),
                scheduler=SchedulerSpec(kind="fifo"),
                measure=2,
                warmup=1,
            )
        )
    return specs


# -- shard arithmetic -------------------------------------------------------


def test_shard_spec_parses_cli_form():
    shard = ShardSpec.parse("1/4")
    assert (shard.index, shard.total) == (1, 4)
    assert str(shard) == "1/4"


@pytest.mark.parametrize("text", ["3", "a/b", "2/2", "-1/2", "0/0", "1/"])
def test_shard_spec_rejects_malformed(text):
    with pytest.raises(ConfigError):
        ShardSpec.parse(text)


def test_shards_partition_positions():
    shards = [ShardSpec(i, 3) for i in range(3)]
    for position in range(20):
        owners = [s for s in shards if s.owns(position)]
        assert len(owners) == 1
        assert owners[0].index == position % 3


# -- claim board ------------------------------------------------------------


def test_claim_is_exclusive_until_released(tmp_path):
    board = ClaimBoard(tmp_path)
    assert board.try_claim("k1", "host-a")
    assert not board.try_claim("k1", "host-b")
    board.release("k1")
    assert board.try_claim("k1", "host-b")


def test_release_tolerates_missing_claim(tmp_path):
    ClaimBoard(tmp_path).release("never-claimed")


def test_steal_requires_an_existing_claim(tmp_path):
    board = ClaimBoard(tmp_path)
    assert not board.steal("k1", "thief")  # holder already released
    board.try_claim("k1", "victim")
    assert board.steal("k1", "thief")
    assert board._path("k1").read_text() == "thief"


def test_lease_expires_without_heartbeat(tmp_path):
    board = ClaimBoard(tmp_path)
    board.try_claim("k1", "victim")
    assert not board.stale("k1", ttl=30.0)
    # Backdate the mtime: the host died a minute ago.
    past = time.time() - 60.0
    os.utime(board._path("k1"), (past, past))
    assert board.stale("k1", ttl=30.0)
    assert board.age("k1") > 30.0
    assert board.age("unclaimed") is None
    assert not board.stale("unclaimed", ttl=0.0)


def test_heartbeat_keeps_lease_fresh(tmp_path):
    board = ClaimBoard(tmp_path)
    board.try_claim("k1", "me")
    heartbeat = _Heartbeat(board, interval=0.05)
    heartbeat.start()
    try:
        heartbeat.hold("k1")
        time.sleep(0.4)
        assert board.age("k1") < 0.3  # re-stamped while held
        heartbeat.drop("k1")
    finally:
        heartbeat.stop()
        heartbeat.join(timeout=2.0)


# -- sharded sweeps ---------------------------------------------------------


def test_shards_assemble_identical_full_results(tmp_path):
    specs = tiny_specs(5)
    serial = run_trials(specs)
    cache = ResultCache(tmp_path)
    first = run_trials_sharded(
        specs, ShardSpec(0, 2), cache, steal=True, timeout=60.0
    )
    # The second shard arrives late: everything is cached already.
    second = run_trials_sharded(
        specs, ShardSpec(1, 2), cache, steal=False, timeout=60.0
    )
    assert first == serial
    assert second == serial
    assert os.listdir(tmp_path / "claims") == []  # no leaked claims


def test_duplicate_configs_run_once_but_fill_every_position(tmp_path):
    specs = tiny_specs(2)
    specs.append(specs[0])  # same config at two sweep positions
    results = run_trials_sharded(
        specs, ShardSpec(0, 2), ResultCache(tmp_path), steal=True, timeout=60.0
    )
    assert len(results) == 3
    assert results[2] == results[0]


def test_stale_foreign_claim_is_restolen(tmp_path):
    specs = tiny_specs(2)
    cache = ResultCache(tmp_path)
    board = ClaimBoard(cache.root)
    # A dead host claimed shard 1's trial and never finished it.
    foreign_key = trial_key(specs[1])
    board.try_claim(foreign_key, "dead-host")
    past = time.time() - 60.0
    os.utime(board._path(foreign_key), (past, past))
    results = run_trials_sharded(
        specs, ShardSpec(0, 2), cache, steal=True,
        lease_ttl=5.0, timeout=60.0,
    )
    assert results == run_trials(specs)


def test_waiting_shard_times_out_loudly(tmp_path):
    specs = tiny_specs(2)
    with pytest.raises(TimeoutError, match="other shards"):
        run_trials_sharded(
            specs, ShardSpec(0, 2), ResultCache(tmp_path),
            steal=False, poll=0.05, timeout=0.5,
        )


def test_session_routes_run_trials_through_shards(tmp_path):
    specs = tiny_specs(3)
    serial = run_trials(specs)
    with session(cache_dir=tmp_path, shard=ShardSpec(0, 2), steal=True):
        sharded = run_trials(specs)
    assert sharded == serial


def test_session_shard_requires_cache_dir():
    with pytest.raises(ConfigError, match="cache"):
        with session(shard=ShardSpec(0, 2)):
            pass


def test_default_owner_names_host_and_shard():
    owner = default_owner(ShardSpec(2, 4))
    assert "shard2" in owner
    assert str(os.getpid()) in owner


# -- CLI surface ------------------------------------------------------------


def test_reproduce_rejects_bad_shard(capsys):
    code = main(["reproduce", "figure4", "--fast",
                 "--shard", "2/2", "--cache-dir", "/tmp/never-used"])
    captured = capsys.readouterr()
    assert code == 2
    assert "invalid --shard" in captured.err


def test_reproduce_shard_needs_cache_dir(capsys):
    code = main(["reproduce", "figure4", "--fast", "--shard", "0/2"])
    captured = capsys.readouterr()
    assert code == 2
    assert "--shard needs --cache-dir" in captured.err


def test_reproduce_steal_needs_shard(capsys):
    code = main(["reproduce", "figure4", "--fast", "--steal"])
    captured = capsys.readouterr()
    assert code == 2
    assert "--steal" in captured.err


def test_reproduce_sharded_end_to_end(tmp_path, capsys):
    code = main(["reproduce", "figure4", "--fast",
                 "--shard", "0/2", "--steal",
                 "--cache-dir", str(tmp_path)])
    captured = capsys.readouterr()
    assert code == 0
    assert "img/s" in captured.out
