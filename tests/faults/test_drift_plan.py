"""Drift clauses: grammar, sampling determinism, and injector landing.

The ``drift:`` clause family describes continuous time-varying
processes (diurnal bandwidth curves, ramps, random-walk stragglers,
background tenant traffic) that the sampler discretises into the same
piecewise-constant windows the injector already applies.  These tests
pin the grammar (parse + to_spec round-trip, typed errors), the
sampler's purity and bounds, and composition with static link faults —
including the factor-0 invariant that keeps busy-time accounting
identical on both transmit paths.
"""

import math

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError, FaultPlanError
from repro.faults import FaultPlan, compose_windows, sample_drift_windows
from repro.faults.plan import (
    DEFAULT_WALK_CAP,
    DRIFT_RESOLUTION,
    MAX_DRIFT_STEPS,
    DriftFault,
)
from repro.net import Link, Message, Transport
from repro.sim import Environment
from repro.training import ClusterSpec, SchedulerSpec, TrainingJob
from repro.training.runner import resolve_model


def make_job(arch="ps", fault_plan=None, **cluster_kwargs):
    cluster = ClusterSpec(
        machines=2, gpus_per_machine=1, arch=arch, **cluster_kwargs
    )
    return TrainingJob(
        resolve_model("resnet50"),
        cluster,
        SchedulerSpec(kind="bytescheduler", partition_bytes=8e6, credit_bytes=32e6),
        fault_plan=fault_plan,
    )


# -- grammar ---------------------------------------------------------------


def test_diurnal_clause_parses():
    plan = FaultPlan.parse("drift:diurnal:s0.both@0-24~32x0.15")
    assert plan.drift == (
        DriftFault("diurnal", "s0", "both", 0.0, 24.0, 32.0, 0.15),
    )


def test_ramp_clause_parses():
    plan = FaultPlan.parse("drift:ramp:w1.up@2-10x0.9-0.3")
    assert plan.drift == (
        DriftFault("ramp", "w1", "up", 2.0, 10.0, 0.0, 0.9, 0.3),
    )


def test_compute_walk_clause_parses():
    # A bare worker target is a compute-multiplier walk.
    plan = FaultPlan.parse("drift:walk:w3@3-24~7x0.6-4")
    assert plan.drift == (
        DriftFault("walk", "w3", "", 3.0, 24.0, 7.0, 0.6, 4.0),
    )


def test_link_walk_clause_parses():
    # A <node>.<dir> target walks the link's bandwidth instead.
    plan = FaultPlan.parse("drift:walk:s0.up@0-12~3x0.5-8")
    assert plan.drift == (
        DriftFault("walk", "s0", "up", 0.0, 12.0, 3.0, 0.5, 8.0),
    )


def test_walk_cap_defaults_when_omitted():
    plan = FaultPlan.parse("drift:walk:w0@0-10~2x0.4")
    assert plan.drift[0].level2 == DEFAULT_WALK_CAP


def test_background_clause_parses():
    plan = FaultPlan.parse("drift:background:s0.both@3-24~7x2.5")
    assert plan.drift == (
        DriftFault("background", "s0", "both", 3.0, 24.0, 7.0, 2.5),
    )


def test_drift_composes_with_other_clause_kinds():
    plan = FaultPlan.parse(
        "slowlink:s0.up@0-1x0.5;drift:diurnal:s0.both@0-24~8x0.3;"
        "straggler:w0@0-1x2;seed:7"
    )
    assert len(plan.drift) == 1
    assert len(plan.link_faults) == 1
    assert plan.seed == 7


@pytest.mark.parametrize(
    "clause",
    [
        "drift:sinusoid:s0.up@0-10~5x0.5",  # unknown drift kind
        "drift:diurnal:s0.sideways@0-10~5x0.5",  # bad direction
        "drift:diurnal:s0.up@0-10x0.5",  # diurnal needs ~<period>
        "drift:diurnal:s0.up@0-10~5x0.5-0.7",  # single x<floor> only
        "drift:diurnal:s0.up@0-10~5x0",  # floor out of (0, 1]
        "drift:diurnal:s0.up@0-10~5x1.5",
        "drift:ramp:s0.up@0-10~5x0.9-0.3",  # ramp takes no period
        "drift:ramp:s0.up@0-10x0.9",  # ramp needs x<from>-<to>
        "drift:ramp:s0.up@0-10x0.9-1.5",  # factors in (0, 1]
        "drift:walk:w0@0-10~2x0",  # sigma must be > 0
        "drift:walk:w0@0-10~2x0.5-0.5",  # cap must be >= 1
        "drift:walk:w0@0-10x0.5",  # walk needs ~<tick>
        "drift:background:s0.up@0-10~2x0",  # load must be > 0
        "drift:background:s0.up@0-10~2x2-3",  # single x<load> only
        "drift:diurnal:s0.up@5-2~5x0.5",  # start must precede end
        "drift:diurnal:s0.up@0-inf~5x0.5",  # window must be finite
        "drift:diurnal:s0.up@0-10~0x0.5",  # period must be > 0
        "drift:walk:s0.up@0-10000~0.001x0.5",  # step-count cap
        "drift:diurnal:s0.up",  # no window at all
        "drift:diurnal:s0.upx0.5",
    ],
)
def test_malformed_drift_clauses_raise_typed_errors(clause):
    with pytest.raises(FaultPlanError) as excinfo:
        FaultPlan.parse(clause)
    # The typed error names the clause and its 1-based position.
    assert excinfo.value.clause == clause
    assert excinfo.value.position == 1
    assert isinstance(excinfo.value, ConfigError)


def test_error_position_counts_clauses():
    with pytest.raises(FaultPlanError) as excinfo:
        FaultPlan.parse("seed:3;slowlink:s0.up@0-1x0.5;drift:nope:s0.up@0-1x1")
    assert excinfo.value.position == 3


def test_drift_clauses_round_trip_through_the_grammar():
    spec = (
        "drift:diurnal:s0.both@0-24~32x0.15;"
        "drift:ramp:w1.up@2-10x0.9-0.3;"
        "drift:walk:w3@3-24~7x0.6-4;"
        "drift:walk:s0.up@0-12~3x0.5-8;"
        "drift:background:s0.both@3-24~7x2.5;"
        "seed:11"
    )
    plan = FaultPlan.parse(spec)
    assert FaultPlan.parse(plan.to_spec()) == plan
    assert plan.to_spec() == spec


# Draw grammar-exact values: short decimals print verbatim under the
# ``%g`` formatting ``to_spec`` uses, so equality is exact.
tenths = st.integers(min_value=0, max_value=400).map(lambda n: n / 10)
small = st.integers(min_value=1, max_value=10).map(lambda n: n / 10)


@given(
    kind=st.sampled_from(["diurnal", "ramp", "walk", "background"]),
    node=st.sampled_from(["w0", "w1", "s0"]),
    direction=st.sampled_from(["up", "down", "loop", "both", ""]),
    start_n=st.integers(min_value=0, max_value=400),
    span_n=st.integers(min_value=1, max_value=200),
    period_n=st.integers(min_value=1, max_value=100),
    level=small,
    level2=st.integers(min_value=10, max_value=80).map(lambda n: n / 10),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=150, deadline=None)
def test_any_valid_drift_plan_round_trips(
    kind, node, direction, start_n, span_n, period_n, level, level2, seed
):
    if kind == "walk" and not direction:
        pass  # compute walk: bare worker target
    elif not direction:
        direction = "both"
    if kind == "diurnal":
        # Keep under the step cap: 64 stairs per cycle.
        assume(span_n / period_n * DRIFT_RESOLUTION <= MAX_DRIFT_STEPS)
    fault = DriftFault(
        kind,
        node,
        direction,
        start_n / 10,
        (start_n + span_n) / 10,  # integer end: exact under %g
        period=0.0 if kind == "ramp" else period_n / 10,
        level=level,
        level2={"ramp": level, "walk": level2}.get(kind, 0.0),
    )
    plan = FaultPlan(drift=(fault,), seed=seed)
    assert FaultPlan.parse(plan.to_spec()) == plan


# -- sampling --------------------------------------------------------------


def test_sampling_is_a_pure_function_of_fault_and_seed():
    fault = DriftFault("walk", "w0", "", 0.0, 20.0, 1.0, 0.6, 4.0)
    assert sample_drift_windows(fault, 3) == sample_drift_windows(fault, 3)
    assert sample_drift_windows(fault, 3) != sample_drift_windows(fault, 4)


def test_clauses_in_one_plan_walk_independently():
    # The per-clause CRC salt decorrelates two otherwise-identical
    # clauses on different targets.
    a = DriftFault("walk", "w0", "", 0.0, 20.0, 1.0, 0.6, 4.0)
    b = DriftFault("walk", "w1", "", 0.0, 20.0, 1.0, 0.6, 4.0)
    assert sample_drift_windows(a, 0) != sample_drift_windows(b, 0)


def test_diurnal_samples_bounded_by_floor_and_one():
    fault = DriftFault("diurnal", "s0", "both", 0.0, 24.0, 8.0, 0.3)
    windows = sample_drift_windows(fault, 0)
    factors = [factor for _, _, factor in windows]
    assert all(0.3 <= factor <= 1.0 for factor in factors)
    assert min(factors) < 0.35  # the curve actually reaches the floor


def test_diurnal_resolution_tracks_cycle_count():
    one_cycle = DriftFault("diurnal", "s0", "up", 0.0, 8.0, 8.0, 0.5)
    three_cycles = DriftFault("diurnal", "s0", "up", 0.0, 24.0, 8.0, 0.5)
    assert one_cycle.steps == DRIFT_RESOLUTION
    assert three_cycles.steps == 3 * DRIFT_RESOLUTION
    assert three_cycles.steps <= MAX_DRIFT_STEPS


def test_ramp_moves_linearly_between_endpoints():
    fault = DriftFault("ramp", "s0", "up", 0.0, 10.0, 0.0, 0.9, 0.3)
    windows = sample_drift_windows(fault, 0)
    factors = [factor for _, _, factor in windows]
    assert factors == sorted(factors, reverse=True)
    assert factors[0] == pytest.approx(0.9, abs=0.05)
    assert factors[-1] == pytest.approx(0.3, abs=0.05)


def test_compute_walk_multipliers_stay_in_one_to_cap():
    fault = DriftFault("walk", "w0", "", 0.0, 100.0, 1.0, 0.8, 4.0)
    for _, _, multiplier in sample_drift_windows(fault, 5):
        assert 1.0 <= multiplier <= 4.0


def test_link_walk_is_the_reciprocal_walk():
    compute = DriftFault("walk", "s0", "", 0.0, 50.0, 1.0, 0.8, 4.0)
    # Same node text; the clause differs, so re-derive by bounds only.
    link = DriftFault("walk", "s0", "up", 0.0, 50.0, 1.0, 0.8, 4.0)
    for _, _, factor in sample_drift_windows(link, 5):
        assert 0.25 <= factor <= 1.0
    assert compute != link


def test_background_share_is_a_proper_fraction():
    fault = DriftFault("background", "s0", "both", 0.0, 100.0, 2.0, 2.5)
    for _, _, factor in sample_drift_windows(fault, 9):
        assert 0.0 < factor <= 1.0


def test_sampled_windows_are_sorted_disjoint_and_cover_the_span():
    fault = DriftFault("diurnal", "s0", "both", 2.0, 26.0, 8.0, 0.4)
    windows = sample_drift_windows(fault, 0)
    assert windows[0][0] == pytest.approx(2.0)
    assert windows[-1][1] == pytest.approx(26.0)
    for (_, end, _), (start, _, _) in zip(windows, windows[1:]):
        assert start == pytest.approx(end)  # coalesced, gap-free


# -- composition with static faults (S2) -----------------------------------


def test_compose_multiplies_on_overlap_and_preserves_blackouts():
    drift = ((0.0, 4.0, 0.5),)
    static = ((1.0, 2.0, 0.5), (3.0, 5.0, 0.0))
    composed = compose_windows(static, drift)
    assert composed == (
        (0.0, 1.0, 0.5),
        (1.0, 2.0, 0.25),
        (2.0, 3.0, 0.5),
        (3.0, 5.0, 0.0),  # 0 x f = 0: the blackout survives the drift
    )


def test_drift_composes_with_slowlink_on_the_fabric_link():
    job = make_job(
        fault_plan=FaultPlan.parse(
            "slowlink:s0.up@0-1x0.5;drift:ramp:s0.up@0-1x0.8-0.4"
        )
    )
    windows = job.fabric.nic("s0").uplink._fault_windows
    assert len(windows) == DRIFT_RESOLUTION
    for _, _, factor in windows:
        assert factor < 0.5  # every step carries both factors
    assert job.fabric.nic("s0").downlink._fault_windows == ()


def test_compute_walk_lands_on_the_workers_engine():
    job = make_job(
        fault_plan=FaultPlan.parse("drift:walk:w1@0-10~1x0.9-4;seed:3")
    )
    assert job.engines["w0"].compute_scale is None
    scale = job.engines["w1"].compute_scale
    assert scale is not None
    plan = FaultPlan.parse("drift:walk:w1@0-10~1x0.9-4;seed:3")
    for start, end, multiplier in plan.drift_walk_windows("w1"):
        mid = (start + end) / 2
        assert scale(mid, 1.0) == pytest.approx(multiplier)
    assert scale(10.5, 1.0) == pytest.approx(1.0)  # after the window


def test_walk_chains_on_top_of_a_static_straggler():
    spec = "straggler:w0@0-10x2;drift:walk:w0@0-10~1x0.9-4;seed:3"
    job = make_job(fault_plan=FaultPlan.parse(spec))
    plan = FaultPlan.parse(spec)
    start, end, multiplier = plan.drift_walk_windows("w0")[0]
    mid = (start + end) / 2
    assert job.engines["w0"].compute_scale(mid, 1.0) == pytest.approx(
        2.0 * multiplier
    )


def test_link_drift_lands_on_the_allreduce_pipe():
    job = make_job(
        arch="allreduce",
        fault_plan=FaultPlan.parse("drift:diurnal:m0.both@0-10~5x0.5"),
    )
    assert len(job.backend._fault_windows) > 1
    job = make_job(
        arch="allreduce",
        fault_plan=FaultPlan.parse("drift:walk:m0@0-10~1x0.5-4"),
    )
    # A compute walk never degrades the collective pipe.
    assert job.backend._fault_windows == ()
    assert job.engines["m0"].compute_scale is not None


def test_unknown_drift_targets_rejected():
    with pytest.raises(ConfigError, match="unknown worker"):
        make_job(fault_plan=FaultPlan.parse("drift:walk:w9@0-1~1x0.5"))
    with pytest.raises(ConfigError, match="unknown node"):
        make_job(fault_plan=FaultPlan.parse("drift:diurnal:nope.up@0-1~1x0.5"))
    with pytest.raises(ConfigError, match="unknown node"):
        make_job(
            arch="allreduce",
            fault_plan=FaultPlan.parse("drift:diurnal:s0.up@0-1~1x0.5"),
        )


def test_blackout_under_drift_busy_time_agrees_between_paths():
    # The factor-0 invariant, end to end: a static blackout composed
    # with a drift curve must charge identical busy time on the plain
    # and cut-through transmit paths — stalls are idle on both, and the
    # drift factors stretch serialisation identically.
    plan = FaultPlan.parse(
        "blackout:n0.up@0.5-1.5;drift:diurnal:n0.up@0-30~10x0.4"
    )
    windows = plan.drift_link_windows("n0", "up")
    windows = compose_windows(plan.link_windows("n0", "up"), windows)
    assert any(factor == 0.0 for _, _, factor in windows)

    bandwidth = 100.0
    sizes = [80.0, 120.0, 60.0, 200.0]
    env_plain, env_cut = Environment(), Environment()
    plain = Link(env_plain, "n0.up", bandwidth, Transport("t", 0.0, 1.0))
    cut = Link(env_cut, "n0.up", bandwidth, Transport("t", 0.0, 1.0))
    plain.set_fault_windows(windows)
    cut.set_fault_windows(windows)
    for size in sizes:
        plain.transmit(Message("a", "b", size))
        cut.transmit_cut_through(Message("a", "b", size), available_at=0.0)
    assert plain.busy_time == pytest.approx(cut.busy_time)
    assert plain.busy_until == pytest.approx(cut.busy_until)
    # Busy time excludes the blackout stall but includes drift stretch.
    healthy = sum(size / bandwidth for size in sizes)
    assert plain.busy_time >= healthy - 1e-9
    assert plain.busy_time <= plain.busy_until - env_plain.now + 1e-9
