"""Injector wiring: where each fault kind lands on a built job."""

import pytest

from repro.errors import ConfigError
from repro.faults import FaultPlan, make_straggler_scale
from repro.net import FaultyTransport
from repro.training import ClusterSpec, SchedulerSpec, TrainingJob
from repro.training.runner import resolve_model


def make_job(arch="ps", fault_plan=None, **cluster_kwargs):
    cluster = ClusterSpec(
        machines=2, gpus_per_machine=1, arch=arch, **cluster_kwargs
    )
    return TrainingJob(
        resolve_model("resnet50"),
        cluster,
        SchedulerSpec(kind="bytescheduler", partition_bytes=8e6, credit_bytes=32e6),
        fault_plan=fault_plan,
    )


def test_unknown_worker_rejected():
    with pytest.raises(ConfigError, match="unknown worker"):
        make_job(fault_plan=FaultPlan.parse("straggler:w9@0-1x2"))


def test_unknown_node_rejected_on_ps_fabric():
    with pytest.raises(ConfigError, match="unknown node"):
        make_job(fault_plan=FaultPlan.parse("slowlink:nope.up@0-1x0.5"))


def test_unknown_node_rejected_on_allreduce():
    with pytest.raises(ConfigError, match="unknown node"):
        make_job(arch="allreduce", fault_plan=FaultPlan.parse("blackout:s0.up@0-1"))


def test_empty_plan_is_a_noop():
    job = make_job(fault_plan=FaultPlan())
    assert all(engine.compute_scale is None for engine in job.engines.values())
    assert not isinstance(job.fabric.transport, FaultyTransport)


def test_straggler_lands_on_the_named_workers_engine():
    job = make_job(fault_plan=FaultPlan.parse("straggler:w0@0.0-infx2"))
    assert job.engines["w0"].compute_scale is not None
    assert job.engines["w1"].compute_scale is None
    scale = job.engines["w0"].compute_scale
    assert scale(0.5, 1.0) == pytest.approx(2.0)


def test_make_straggler_scale_window_attribution():
    scale = make_straggler_scale(((0.1, 0.2, 3.0), (0.5, 0.6, 2.0)))
    assert scale(0.05, 1.0) == pytest.approx(1.0)   # before any window
    assert scale(0.15, 1.0) == pytest.approx(3.0)   # inside the first
    assert scale(0.2, 1.0) == pytest.approx(1.0)    # windows are half-open
    assert scale(0.55, 1.0) == pytest.approx(2.0)
    assert scale(0.9, 1.0) == pytest.approx(1.0)


def test_link_fault_lands_on_the_named_direction():
    job = make_job(
        fault_plan=FaultPlan.parse(
            "slowlink:w0.up@0.0-0.1x0.5;blackout:s0.down@0.2-0.3;"
            "slowlink:w1.loop@0.0-0.1x0.5"
        )
    )
    assert job.fabric.nic("w0").uplink._fault_windows == ((0.0, 0.1, 0.5),)
    assert job.fabric.nic("w0").downlink._fault_windows == ()
    assert job.fabric.nic("s0").downlink._fault_windows == ((0.2, 0.3, 0.0),)
    assert job.fabric.loopback("w1")._fault_windows == ((0.0, 0.1, 0.5),)


def test_transport_fault_wraps_every_remote_link_once():
    job = make_job(fault_plan=FaultPlan.parse("loss:0.05;seed:3"))
    faulty = job.fabric.transport
    assert isinstance(faulty, FaultyTransport)
    for node in job.fabric.nodes:
        nic = job.fabric.nic(node)
        # One shared wrapper: a single seeded draw sequence for the run.
        assert nic.uplink.transport is faulty
        assert nic.downlink.transport is faulty


def test_allreduce_link_fault_degrades_the_collective():
    job = make_job(
        arch="allreduce",
        fault_plan=FaultPlan.parse("slowlink:m0.up@0.0-0.1x0.5"),
    )
    assert job.backend._fault_windows == ((0.0, 0.1, 0.5),)


def test_allreduce_loss_arms_the_backend():
    job = make_job(
        arch="allreduce",
        retry_timeout=0.02,
        fault_plan=FaultPlan.parse("loss:0.2;seed:1"),
    )
    assert job.backend._loss_probability == 0.2
    assert job.backend._fault_rng is not None


def test_straggler_slows_the_run():
    healthy = make_job().run(measure=2).speed
    slowed = make_job(
        fault_plan=FaultPlan.parse("straggler:w0@0.0-infx2")
    ).run(measure=2).speed
    assert slowed < healthy
