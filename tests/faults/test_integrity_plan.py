"""Integrity clauses in the fault-plan grammar, and the typed parse
error + spec round-trip the grammar guarantees."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError, FaultPlanError
from repro.faults import CrashFault, FaultPlan, IntegrityFault, LinkFault


def test_parse_integrity_clauses():
    plan = FaultPlan.parse(
        "corrupt:s0.down@0-0.5%0.02;dup:w1.up@0.1-0.3%0.05;"
        "reorder:s1.loop@0-inf%0.01;seed:9"
    )
    assert plan.integrity == (
        IntegrityFault("corrupt", "s0", "down", 0.0, 0.5, 0.02),
        IntegrityFault("dup", "w1", "up", 0.1, 0.3, 0.05),
        IntegrityFault("reorder", "s1", "loop", 0.0, math.inf, 0.01),
    )
    assert plan.seed == 9
    assert not plan.empty


def test_integrity_windows_filter_by_kind_node_direction():
    plan = FaultPlan.parse(
        "corrupt:s0.down@0-0.5%0.02;corrupt:s0.up@0.6-0.7%0.1;"
        "dup:s0.both@0-1%0.05"
    )
    assert plan.integrity_windows("s0", "down", "corrupt") == ((0.0, 0.5, 0.02),)
    assert plan.integrity_windows("s0", "up", "corrupt") == ((0.6, 0.7, 0.1),)
    # 'both' covers either direction.
    assert plan.integrity_windows("s0", "up", "dup") == ((0.0, 1.0, 0.05),)
    assert plan.integrity_windows("s0", "down", "dup") == ((0.0, 1.0, 0.05),)
    assert plan.integrity_windows("w9", "up", "corrupt") == ()


def test_integrity_fault_validation():
    with pytest.raises(ConfigError):
        IntegrityFault("smudge", "s0", "down", 0.0, 1.0, 0.1)
    with pytest.raises(ConfigError):
        IntegrityFault("corrupt", "s0", "sideways", 0.0, 1.0, 0.1)
    with pytest.raises(ConfigError):
        IntegrityFault("corrupt", "s0", "down", 0.0, 1.0, 1.0)  # rate < 1
    with pytest.raises(ConfigError):
        IntegrityFault("corrupt", "s0", "down", 1.0, 0.5, 0.1)  # end < start


@pytest.mark.parametrize(
    "spec",
    [
        "corrupt:s0@0-1%0.1",          # missing .direction
        "corrupt:s0.down@0-1",         # missing %<rate>
        "dup:s0.down@0,1%0.1",         # comma instead of dash
        "reorder:s0.down@0-1%2",       # rate out of range
    ],
)
def test_parse_rejects_malformed_integrity_clauses(spec):
    with pytest.raises(ConfigError):
        FaultPlan.parse(spec)


def test_parse_error_names_clause_and_position():
    with pytest.raises(FaultPlanError) as excinfo:
        FaultPlan.parse("crash:s0@0.2;warp:w0@0-1x2;seed:3")
    error = excinfo.value
    assert error.position == 2
    assert error.clause == "warp:w0@0-1x2"
    assert "clause 2" in str(error) and "warp" in str(error)
    # Still a ConfigError, so pre-existing handlers keep working.
    assert isinstance(error, ConfigError)


def test_describe_mentions_integrity_faults():
    plan = FaultPlan.parse("corrupt:s0.down@0-0.5%0.02;seed:3")
    text = plan.describe()
    assert "corrupt s0.down" in text and "p=0.02" in text and "seed 3" in text


# -- spec round-trip property ----------------------------------------------

_nodes = st.sampled_from(["w0", "w1", "s0", "s1"])
_directions = st.sampled_from(["up", "down", "loop", "both"])
_times = st.floats(0.0, 2.0).map(lambda value: round(value, 3))
_rates = st.floats(0.01, 0.99).map(lambda value: round(value, 3))


_integrity_faults = st.builds(
    IntegrityFault,
    kind=st.sampled_from(["corrupt", "dup", "reorder"]),
    node=_nodes,
    direction=_directions,
    start=st.just(0.0),
    end=st.one_of(
        st.just(math.inf), _times.map(lambda t: round(t + 0.001, 3))
    ),
    rate=_rates,
)

_crash_faults = st.builds(
    CrashFault,
    node=_nodes,
    time=_times,
    restart_delay=st.one_of(st.none(), _rates),
)

_link_faults = st.builds(
    LinkFault,
    node=_nodes,
    direction=st.sampled_from(["up", "down", "both"]),
    start=st.just(0.0),
    end=_times.map(lambda t: round(t + 0.001, 3)),
    rate_factor=st.floats(0.1, 0.9).map(lambda value: round(value, 3)),
)


@settings(max_examples=60, deadline=None)
@given(
    integrity=st.lists(_integrity_faults, max_size=4),
    crashes=st.lists(_crash_faults, max_size=2, unique_by=lambda c: c.node),
    links=st.lists(_link_faults, max_size=3),
    seed=st.integers(0, 2**31),
)
def test_spec_round_trip(integrity, crashes, links, seed):
    """``FaultPlan.parse(plan.to_spec()) == plan`` for every
    grammar-expressible plan."""
    plan = FaultPlan(
        link_faults=tuple(links),
        crashes=tuple(crashes),
        integrity=tuple(integrity),
        seed=seed,
    )
    assert FaultPlan.parse(plan.to_spec()) == plan
