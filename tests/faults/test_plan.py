"""Unit tests for the declarative fault plan and its CLI grammar."""

import math

import pytest

from repro.errors import ConfigError
from repro.faults import (
    FaultPlan,
    LinkFault,
    StragglerFault,
    TransportFault,
    degraded_finish,
    merge_windows,
)


# -- grammar ---------------------------------------------------------------


def test_parse_full_grammar():
    plan = FaultPlan.parse(
        "straggler:w0@0.0-0.5x3;slowlink:w1.up@0.1-0.3x0.25;"
        "blackout:s0.down@0.2-0.25;loss:0.02@0.001;delay:0.1@0.002;seed:7"
    )
    assert plan.stragglers == (StragglerFault("w0", 0.0, 0.5, 3.0),)
    assert plan.link_faults == (
        LinkFault("w1", "up", 0.1, 0.3, 0.25),
        LinkFault("s0", "down", 0.2, 0.25, 0.0),
    )
    assert plan.transport.loss_probability == 0.02
    assert plan.transport.retransmit_penalty == 0.001
    assert plan.transport.delay_probability == 0.1
    assert plan.transport.delay == 0.002
    assert plan.seed == 7
    assert not plan.empty


def test_parse_open_ended_window():
    plan = FaultPlan.parse("straggler:w0@0.0-infx1.5")
    assert plan.stragglers[0].end == math.inf
    plan = FaultPlan.parse("slowlink:w0.up@0.1-x0.5")  # blank end = inf
    assert plan.link_faults[0].end == math.inf


def test_parse_empty_and_whitespace_clauses():
    assert FaultPlan.parse("").empty
    assert FaultPlan.parse(" ; ; ").empty


@pytest.mark.parametrize(
    "spec",
    [
        "nonsense",
        "warp:w0@0-1x2",
        "straggler:w0",
        "straggler:w0@0-1",          # missing x<slowdown>
        "slowlink:w0@0-1x0.5",       # missing .direction
        "blackout:w0.up@0.2-",       # infinite blackout
        "delay:0.1",                 # missing duration
        "straggler:@0-1x2",          # empty target
    ],
)
def test_parse_rejects_malformed_clauses(spec):
    with pytest.raises(ConfigError):
        FaultPlan.parse(spec)


def test_describe_round_trips_the_story():
    plan = FaultPlan.parse("straggler:w0@0-1x2;loss:0.05;seed:3")
    text = plan.describe()
    assert "straggler w0" in text and "loss p=0.05" in text and "seed 3" in text
    assert FaultPlan().describe() == "healthy (no faults)"


def test_with_seed_changes_only_the_seed():
    plan = FaultPlan.parse("loss:0.05;seed:1")
    reseeded = plan.with_seed(9)
    assert reseeded.seed == 9
    assert reseeded.transport == plan.transport
    assert reseeded.link_faults == plan.link_faults


# -- validation ------------------------------------------------------------


def test_link_fault_validation():
    with pytest.raises(ConfigError):
        LinkFault("w0", "sideways", 0.0, 1.0, 0.5)
    with pytest.raises(ConfigError):
        LinkFault("w0", "up", 0.0, 1.0, 1.5)
    with pytest.raises(ConfigError):
        LinkFault("w0", "up", 1.0, 0.5, 0.5)  # end before start
    with pytest.raises(ConfigError):
        LinkFault("w0", "up", 0.0, math.inf, 0.0)  # endless blackout


def test_straggler_validation():
    with pytest.raises(ConfigError):
        StragglerFault("w0", 0.0, 1.0, 0.5)  # speedup, not slowdown
    with pytest.raises(ConfigError):
        StragglerFault("w0", 2.0, 1.0, 2.0)


def test_transport_fault_validation():
    with pytest.raises(ConfigError):
        TransportFault(loss_probability=1.0)  # certain loss disallowed
    with pytest.raises(ConfigError):
        TransportFault(delay_probability=-0.1)
    with pytest.raises(ConfigError):
        TransportFault(retransmit_penalty=-1.0)
    with pytest.raises(ConfigError):
        TransportFault(max_losses=0)
    assert not TransportFault().active
    assert TransportFault(loss_probability=0.1).active
    assert TransportFault(delay_probability=0.1, delay=0.01).active


# -- window arithmetic -----------------------------------------------------


def test_merge_windows_sorts_and_rejects_overlap():
    merged = merge_windows([(0.5, 0.6, 0.1), (0.0, 0.2, 0.5)])
    assert merged == ((0.0, 0.2, 0.5), (0.5, 0.6, 0.1))
    with pytest.raises(ConfigError):
        merge_windows([(0.0, 0.3, 0.5), (0.2, 0.4, 0.1)])


def test_link_windows_filters_by_node_and_direction():
    plan = FaultPlan.parse(
        "slowlink:w0.up@0.0-0.1x0.5;blackout:w0.down@0.0-0.1;"
        "slowlink:w1.both@0.2-0.3x0.25"
    )
    assert plan.link_windows("w0", "up") == ((0.0, 0.1, 0.5),)
    assert plan.link_windows("w0", "down") == ((0.0, 0.1, 0.0),)
    assert plan.link_windows("w1", "up") == ((0.2, 0.3, 0.25),)
    assert plan.link_windows("w1", "down") == ((0.2, 0.3, 0.25),)
    assert plan.link_windows("w9", "up") == ()


def test_degraded_finish_healthy_path():
    assert degraded_finish(1.0, 2.0, ()) == pytest.approx(3.0)
    # Window entirely in the past: no effect.
    assert degraded_finish(1.0, 2.0, ((0.0, 0.5, 0.0),)) == pytest.approx(3.0)
    # Work finishes before the window opens.
    assert degraded_finish(0.0, 1.0, ((2.0, 3.0, 0.0),)) == pytest.approx(1.0)


def test_degraded_finish_half_rate_window():
    # 1s of work starting at 0; [0, 2) runs at half rate -> done at 2.
    assert degraded_finish(0.0, 1.0, ((0.0, 2.0, 0.5),)) == pytest.approx(2.0)
    # Window ends mid-work: 0.5s served in [0,1) at half rate, rest after.
    assert degraded_finish(0.0, 1.0, ((0.0, 1.0, 0.5),)) == pytest.approx(1.5)


def test_degraded_finish_blackout_stalls():
    assert degraded_finish(0.0, 1.0, ((0.0, 5.0, 0.0),)) == pytest.approx(6.0)
    # Start mid-blackout.
    assert degraded_finish(2.0, 1.0, ((0.0, 5.0, 0.0),)) == pytest.approx(6.0)


def test_degraded_finish_chains_multiple_windows():
    windows = ((0.0, 1.0, 0.5), (2.0, 3.0, 0.0))
    # 2s of work: 0.5 done in [0,1), 1.0 done in [1,2), stall to 3, rest.
    assert degraded_finish(0.0, 2.0, windows) == pytest.approx(3.5)


def test_degraded_finish_zero_work():
    assert degraded_finish(1.0, 0.0, ((0.0, 5.0, 0.5),)) == pytest.approx(1.0)


# -- elastic scale events ---------------------------------------------------


def test_scale_clauses_round_trip_through_the_grammar():
    plan = FaultPlan.parse("leave:w1@0.2;join:w1@0.5;join:w4@0.1;seed:7")
    assert FaultPlan.parse(plan.to_spec()) == plan
    kinds = [(e.kind, e.node, e.time) for e in plan.scale_timeline]
    assert kinds == [
        ("join", "w4", 0.1),
        ("leave", "w1", 0.2),
        ("join", "w1", 0.5),
    ]


def test_scale_events_per_node_and_initially_absent():
    plan = FaultPlan.parse("join:w4@0.1;leave:w1@0.2;join:w1@0.5")
    assert [e.kind for e in plan.scale_events_for("w1")] == ["leave", "join"]
    # A node whose first event is a join starts the run absent.
    assert plan.initially_absent == ("w4",)


def test_scale_events_must_alternate_per_node():
    with pytest.raises(ConfigError, match="alternate"):
        FaultPlan.parse("leave:w1@0.1;leave:w1@0.3")
    with pytest.raises(ConfigError, match="alternate"):
        FaultPlan.parse("join:w2@0.1;join:w2@0.3")


def test_scale_event_rejects_bad_time_and_kind():
    from repro.faults import ScaleEvent

    with pytest.raises(ConfigError):
        ScaleEvent(kind="join", node="w1", time=-0.5)
    with pytest.raises(ConfigError):
        ScaleEvent(kind="shrink", node="w1", time=0.5)


def test_crash_and_scale_on_same_node_rejected():
    with pytest.raises(ConfigError):
        FaultPlan.parse("crash:w1@0.1+0.1;leave:w1@0.4")
