"""Per-transfer timeout + bounded exponential-backoff retry."""

import pytest

from repro.comm.base import RetryPolicy
from repro.comm.ps import PSBackend
from repro.comm.base import ChunkSpec
from repro.errors import TransferAbortedError
from repro.faults import FaultPlan
from repro.net import Fabric, Transport
from repro.sim import Environment, Trace
from repro.training import ClusterSpec, SchedulerSpec, TrainingJob, run_experiment
from repro.training.runner import resolve_model


def test_retry_policy_validation_and_backoff():
    policy = RetryPolicy(timeout=0.01, max_retries=3, backoff=2.0)
    assert policy.attempt_timeout(0) == pytest.approx(0.01)
    assert policy.attempt_timeout(2) == pytest.approx(0.04)
    with pytest.raises(ValueError):
        RetryPolicy(timeout=0.0)
    with pytest.raises(ValueError):
        RetryPolicy(timeout=0.01, max_retries=-1)
    with pytest.raises(ValueError):
        RetryPolicy(timeout=0.01, backoff=0.5)


def make_ps(env, retry, trace=None):
    fabric = Fabric(
        env,
        ("w0", "s0"),
        bandwidth=100.0,
        transport=Transport("ideal", overhead=0.0, efficiency=1.0),
        trace=trace,
        hop_latency=0.0,
    )
    backend = PSBackend(
        env, fabric, workers=("w0",), servers=("s0",),
        layer_bytes=(100,), retry=retry
    )
    return fabric, backend


def test_no_retry_policy_means_plain_transfer():
    env = Environment()
    _fabric, backend = make_ps(env, retry=None)
    handle = backend.start_chunk(ChunkSpec(0, 0, 0, 1, 100.0, worker="w0"))
    env.run()
    assert handle.done.triggered
    assert backend.timeouts == 0 and backend.retries == 0


def test_blackout_triggers_timeouts_and_retries():
    """A push held behind a blackout misses its deadline repeatedly;
    the backend retransmits with exponential backoff, records the
    episodes in the trace, and the chunk still completes."""
    env = Environment()
    trace = Trace(env)
    policy = RetryPolicy(timeout=0.5, max_retries=3, backoff=2.0)
    fabric, backend = make_ps(env, retry=policy, trace=trace)
    fabric.nic("w0").uplink.set_fault_windows(((0.0, 2.0, 0.0),))

    handle = backend.start_chunk(ChunkSpec(0, 0, 0, 1, 10.0, worker="w0"))
    env.run()
    assert handle.done.triggered
    # Push deadlines at 0.5, 1.5 (0.5+1.0), 3.5 (1.5+2.0): the first
    # two expire inside the blackout, the third copy lands at ~2.1;
    # the pull (0.1s healthy service) never times out.
    assert backend.timeouts == 2
    assert backend.retries == 2
    spans = list(trace.by_category("timeout"))
    assert len(spans) == 2
    assert all(span.name == "push:w0->s0" for span in spans)
    attempts = [dict(span.meta)["attempt"] for span in spans]
    assert attempts == [0, 1]
    assert trace.count("retry") == 2


def test_first_copy_wins_only_once():
    """Retransmitted copies must not double-fire the chunk's events."""
    env = Environment()
    policy = RetryPolicy(timeout=0.1, max_retries=2, backoff=1.0)
    fabric, backend = make_ps(env, retry=policy)
    fabric.nic("w0").uplink.set_fault_windows(((0.0, 0.15, 0.0),))
    fired = []
    handle = backend.start_chunk(ChunkSpec(0, 0, 0, 1, 10.0, worker="w0"))
    handle.done.callbacks.append(lambda evt: fired.append(evt.env.now))
    env.run()
    assert len(fired) == 1
    # All three copies eventually traverse the link (bandwidth cost of
    # retrying), but only the first delivery completes the chunk.
    assert fabric.nic("w0").uplink.messages_sent == 3


def test_exhausted_budget_aborts_with_typed_error():
    """A permanent blackout with finite retries must not hang the
    waiter: the transfer aborts with a typed error, recorded as an
    ``abort`` span, and the error surfaces out of ``env.run()``."""
    env = Environment()
    trace = Trace(env)
    policy = RetryPolicy(timeout=0.15, max_retries=1, backoff=1.0)
    fabric, backend = make_ps(env, retry=policy, trace=trace)
    fabric.nic("w0").uplink.set_fault_windows(((0.0, 100.0, 0.0),))
    handle = backend.start_chunk(ChunkSpec(0, 0, 0, 1, 10.0, worker="w0"))
    with pytest.raises(TransferAbortedError) as excinfo:
        env.run()
    assert not handle.done.triggered
    assert backend.timeouts == 2          # both attempts expired
    assert backend.retries == 1           # one retransmission allowed
    assert backend.aborts == 1
    assert excinfo.value.message.kind == "push"
    spans = list(trace.by_category("abort"))
    assert len(spans) == 1
    assert spans[0].name == "push:w0->s0"
    assert dict(spans[0].meta)["attempts"] == 2


def test_abort_claimed_by_recovery_handler_does_not_raise():
    """A recovery manager that claims the abort suppresses the error
    (it owns redoing the work for a node it knows is down)."""
    env = Environment()
    policy = RetryPolicy(timeout=0.15, max_retries=1, backoff=1.0)
    fabric, backend = make_ps(env, retry=policy)
    fabric.nic("w0").uplink.set_fault_windows(((0.0, 100.0, 0.0),))
    claimed = []

    def on_abort(message, error):
        claimed.append((message.kind, message.dst))
        return True

    backend.on_abort = on_abort
    backend.start_chunk(ChunkSpec(0, 0, 0, 1, 10.0, worker="w0"))
    env.run()  # must not raise
    assert claimed == [("push", "s0")]
    assert backend.aborts == 1


def test_retry_config_flows_from_cluster_spec():
    cluster = ClusterSpec(
        machines=2, gpus_per_machine=1,
        retry_timeout=0.02, retry_backoff=3.0, max_retries=5,
    )
    policy = cluster.retry_policy
    assert policy.timeout == 0.02
    assert policy.backoff == 3.0
    assert policy.max_retries == 5
    job = TrainingJob(
        resolve_model("resnet50"), cluster, SchedulerSpec(kind="fifo")
    )
    assert job.backend.retry == policy
    assert ClusterSpec(machines=2).retry_policy is None
    with pytest.raises(Exception):
        ClusterSpec(machines=2, retry_timeout=-1.0)


def test_allreduce_loss_with_retry_completes_and_counts():
    cluster = ClusterSpec(
        machines=2, gpus_per_machine=1, arch="allreduce", retry_timeout=0.005
    )
    plan = FaultPlan.parse("loss:0.3;seed:4")
    result = run_experiment(
        "resnet50", cluster, SchedulerSpec(kind="bytescheduler",
                                           partition_bytes=8e6,
                                           credit_bytes=32e6),
        measure=2, warmup=1, fault_plan=plan,
    )
    assert result.speed > 0
