"""Edge-case tests for engine op semantics."""

import pytest

from repro.frameworks import EngineOp, MXNetEngine, OpKind, PyTorchEngine
from repro.sim import Environment


def test_comm_launch_returning_none_completes_immediately():
    env = Environment()
    engine = MXNetEngine(env)
    calls = []
    op = engine.post(
        EngineOp("comm", OpKind.COMM, launch=lambda: calls.append(1) or None)
    )
    env.run()
    assert op.done.triggered
    assert calls == [1]


def test_imperative_comm_launch_none_does_not_block():
    env = Environment()
    engine = PyTorchEngine(env)
    engine.post(EngineOp("comm", OpKind.COMM, launch=lambda: None))
    after = engine.post(EngineOp("after", OpKind.COMPUTE, duration=1.0))
    env.run()
    assert after.finished_at == pytest.approx(1.0)


def test_proxy_with_already_fired_release_continues():
    env = Environment()
    engine = MXNetEngine(env)
    release = env.event()
    release.succeed()
    env.run()  # process the release so it is 'processed'
    proxy = engine.post(EngineOp("proxy", OpKind.PROXY, release=release))
    env.run()
    assert proxy.done.triggered


def test_zero_duration_compute_op():
    env = Environment()
    engine = MXNetEngine(env)
    op = engine.post(EngineOp("instant", OpKind.COMPUTE, duration=0.0))
    env.run()
    assert op.finished_at == 0.0


def test_barrier_with_no_deps_completes_immediately():
    env = Environment()
    engine = MXNetEngine(env)
    barrier = engine.post(EngineOp("barrier", OpKind.BARRIER))
    env.run()
    assert barrier.done.triggered


def test_record_ops_retains_history():
    env = Environment()
    engine = MXNetEngine(env)
    engine.record_ops = True
    a = engine.post(EngineOp("a", OpKind.COMPUTE, duration=0.1))
    b = engine.post(EngineOp("b", OpKind.COMPUTE, duration=0.1, deps=[a]))
    env.run()
    assert engine.ops == [a, b]


def test_record_ops_off_by_default():
    env = Environment()
    engine = MXNetEngine(env)
    engine.post(EngineOp("a", OpKind.COMPUTE, duration=0.1))
    env.run()
    assert engine.ops == []


def test_op_seq_is_posting_order():
    env = Environment()
    engine = MXNetEngine(env)
    ops = [engine.post(EngineOp(f"op{i}", OpKind.COMPUTE, duration=0.1)) for i in range(4)]
    assert [op.seq for op in ops] == [0, 1, 2, 3]


def test_dep_events_accepts_raw_events():
    env = Environment()
    engine = MXNetEngine(env)
    gate = env.event()
    op = engine.post(EngineOp("gated", OpKind.COMPUTE, duration=0.5, deps=[gate]))

    def opener(env):
        yield env.timeout(2.0)
        gate.succeed()

    env.process(opener(env))
    env.run()
    assert op.finished_at == pytest.approx(2.5)
