"""Unit tests for declarative and imperative engine semantics."""

import pytest

from repro.errors import ConfigError
from repro.frameworks import (
    EngineOp,
    MXNetEngine,
    OpKind,
    PyTorchEngine,
    TensorFlowEngine,
    make_engine,
)
from repro.sim import Environment


def compute(name, duration, deps=()):
    return EngineOp(name, OpKind.COMPUTE, deps=deps, duration=duration)


def test_declarative_runs_on_dependencies():
    env = Environment()
    engine = MXNetEngine(env)
    a = engine.post(compute("a", 1.0))
    b = engine.post(compute("b", 2.0, deps=[a]))
    env.run()
    assert a.finished_at == pytest.approx(1.0)
    assert b.finished_at == pytest.approx(3.0)


def test_declarative_gpu_serializes_independent_compute():
    env = Environment()
    engine = MXNetEngine(env)
    a = engine.post(compute("a", 1.0))
    b = engine.post(compute("b", 1.0))  # no dep, but one GPU
    env.run()
    assert sorted([a.finished_at, b.finished_at]) == [
        pytest.approx(1.0),
        pytest.approx(2.0),
    ]


def test_declarative_comm_does_not_hold_gpu():
    env = Environment()
    engine = MXNetEngine(env)
    slow_comm = engine.post(
        EngineOp("comm", OpKind.COMM, launch=lambda: env.timeout(10.0))
    )
    quick = engine.post(compute("q", 1.0))
    env.run()
    assert quick.finished_at == pytest.approx(1.0)
    assert slow_comm.finished_at == pytest.approx(10.0)


def test_declarative_async_comm_completes_at_launch():
    env = Environment()
    engine = TensorFlowEngine(env)
    background = env.event()
    op = engine.post(
        EngineOp("async", OpKind.COMM, launch=lambda: background, async_launch=True)
    )
    env.run()
    assert op.done.triggered
    assert not background.triggered


def test_declarative_proxy_blocks_until_release():
    env = Environment()
    engine = MXNetEngine(env)
    release = env.event()
    fired = []
    proxy = engine.post(
        EngineOp(
            "proxy",
            OpKind.PROXY,
            on_start=lambda: fired.append(env.now),
            release=release,
        )
    )
    downstream = engine.post(compute("down", 1.0, deps=[proxy]))

    def releaser(env):
        yield env.timeout(5.0)
        release.succeed()

    env.process(releaser(env))
    env.run()
    assert fired == [0.0]  # notify_ready fires immediately at start
    assert downstream.finished_at == pytest.approx(6.0)


def test_declarative_barrier_waits_all_deps():
    env = Environment()
    engine = TensorFlowEngine(env)
    a = engine.post(compute("a", 1.0))
    b = engine.post(compute("b", 3.0, deps=[a]))
    barrier = engine.post(EngineOp("barrier", OpKind.BARRIER, deps=[a, b]))
    env.run()
    assert barrier.finished_at == pytest.approx(4.0)


def test_imperative_strict_program_order():
    env = Environment()
    engine = PyTorchEngine(env)
    a = engine.post(compute("a", 1.0))
    b = engine.post(compute("b", 2.0))  # no declared dep; order suffices
    env.run()
    assert a.finished_at == pytest.approx(1.0)
    assert b.finished_at == pytest.approx(3.0)


def test_imperative_comm_launch_does_not_block_driver():
    env = Environment()
    engine = PyTorchEngine(env)
    comm = engine.post(EngineOp("comm", OpKind.COMM, launch=lambda: env.timeout(10.0)))
    after = engine.post(compute("after", 1.0))
    env.run()
    assert after.finished_at == pytest.approx(1.0)
    assert comm.finished_at == pytest.approx(10.0)


def test_imperative_barrier_blocks_driver_on_comm_completion():
    env = Environment()
    engine = PyTorchEngine(env)
    comm = engine.post(EngineOp("comm", OpKind.COMM, launch=lambda: env.timeout(5.0)))
    barrier = engine.post(EngineOp("barrier", OpKind.BARRIER, deps=[comm]))
    next_iter = engine.post(compute("next", 1.0))
    env.run()
    assert barrier.finished_at == pytest.approx(5.0)
    assert next_iter.finished_at == pytest.approx(6.0)


def test_imperative_proxy_hook_blocks_driver():
    env = Environment()
    engine = PyTorchEngine(env)
    release = env.event()
    proxy = engine.post(EngineOp("hook", OpKind.PROXY, release=release))
    after = engine.post(compute("after", 1.0))

    def releaser(env):
        yield env.timeout(3.0)
        release.succeed()

    env.process(releaser(env))
    env.run()
    assert proxy.finished_at == pytest.approx(3.0)
    assert after.finished_at == pytest.approx(4.0)


def test_barrier_flags():
    env = Environment()
    assert MXNetEngine(env).has_barrier is False
    assert TensorFlowEngine(env).has_barrier is True
    assert PyTorchEngine(env).has_barrier is True


def test_make_engine_by_name():
    env = Environment()
    assert make_engine("mxnet", env).style == "declarative"
    assert make_engine("pytorch", env).style == "imperative"
    with pytest.raises(ConfigError):
        make_engine("caffe", env)


def test_post_twice_rejected():
    env = Environment()
    engine = MXNetEngine(env)
    op = compute("a", 1.0)
    engine.post(op)
    with pytest.raises(ConfigError):
        engine.post(op)


def test_comm_requires_launch():
    with pytest.raises(ConfigError):
        EngineOp("bad", OpKind.COMM)


def test_dep_on_unposted_op_rejected():
    env = Environment()
    engine = MXNetEngine(env)
    ghost = compute("ghost", 1.0)
    op = compute("a", 1.0, deps=[ghost])
    engine.post(op)
    with pytest.raises(ConfigError):
        env.run()


def test_negative_duration_rejected():
    with pytest.raises(ConfigError):
        compute("bad", -1.0)
