"""Unit tests for the chaos oracle and its invariant checks.

Each invariant is exercised against a minimal fake job, so the tests
pin what each check *detects* without simulating a whole run; one
end-to-end test wires the oracle into a real TrainingJob.
"""

import pytest

from repro.errors import InvariantViolation, SchedulerError
from repro.invariants import (
    ChaosOracle,
    CreditConservation,
    GradientByteConservation,
    MonotoneClock,
    SingleCompletion,
    default_invariants,
)


class FakeLayer:
    def __init__(self, index, param_bytes):
        self.index = index
        self.param_bytes = param_bytes


class FakeModel:
    def __init__(self, sizes):
        self.layers = [FakeLayer(i, s) for i, s in enumerate(sizes)]


class FakeCore:
    def __init__(self, fail=False):
        self.name = "core0"
        self.fail = fail

    def check_credit_invariant(self):
        if self.fail:
            raise SchedulerError("credit ledger off by 42 bytes")


class FakeEnv:
    def __init__(self):
        self.now = 0.0


class FakeBackend:
    def __init__(self):
        self.layer_bytes_completed = {}
        self.on_complete = None


class FakeJob:
    def __init__(self, sizes=(100.0,), iterations=1, core=None):
        self.model = FakeModel(sizes)
        self.backend = FakeBackend()
        self.env = FakeEnv()
        self._built_iterations = iterations
        self._core = core or FakeCore()

    def _unique_cores(self):
        return [self._core]


# -- individual invariants -------------------------------------------------


def test_credit_conservation_wraps_scheduler_error():
    invariant = CreditConservation()
    job = FakeJob(core=FakeCore(fail=True))
    with pytest.raises(InvariantViolation) as excinfo:
        invariant.verify(job)
    assert excinfo.value.invariant == "credit-conservation"
    assert "42 bytes" in str(excinfo.value)

    healthy = FakeJob()
    invariant.verify(healthy)
    assert invariant.summary() == {"checks": 1}


def test_gradient_byte_conservation_flags_double_apply():
    invariant = GradientByteConservation()
    job = FakeJob(sizes=(100.0,))
    invariant.install(job)
    job.backend.layer_bytes_completed[(0, 0)] = 150.0  # > the 100 B layer
    with pytest.raises(InvariantViolation, match="double-applied"):
        invariant.on_complete(job, (0, 0, 0))


def test_gradient_byte_conservation_flags_shortfall_at_end():
    invariant = GradientByteConservation()
    job = FakeJob(sizes=(100.0,))
    invariant.install(job)
    job.backend.layer_bytes_completed[(0, 0)] = 60.0
    with pytest.raises(InvariantViolation, match="expected exactly"):
        invariant.verify(job)


def test_gradient_byte_conservation_flags_missing_layer():
    invariant = GradientByteConservation()
    job = FakeJob(sizes=(100.0, 200.0))
    invariant.install(job)
    job.backend.layer_bytes_completed[(0, 0)] = 100.0  # layer 1 never ran
    with pytest.raises(InvariantViolation, match="never"):
        invariant.verify(job)


def test_gradient_byte_conservation_passes_exact_ledger():
    invariant = GradientByteConservation()
    job = FakeJob(sizes=(100.0, 200.0))
    invariant.install(job)
    job.backend.layer_bytes_completed = {(0, 0): 100.0, (0, 1): 200.0}
    invariant.on_complete(job, (0, 0, 0))
    invariant.verify(job)


def test_single_completion_rejects_replay():
    invariant = SingleCompletion()
    job = FakeJob()
    invariant.on_complete(job, (0, 3, 1))
    with pytest.raises(InvariantViolation, match="twice"):
        invariant.on_complete(job, (0, 3, 1))
    assert invariant.summary() == {"completions": 1}


def test_monotone_clock_rejects_time_travel():
    invariant = MonotoneClock()
    job = FakeJob()
    job.env.now = 2.0
    invariant.on_complete(job, (0, 0, 0))
    job.env.now = 1.0
    with pytest.raises(InvariantViolation, match="backwards"):
        invariant.on_complete(job, (0, 0, 1))


# -- the oracle ------------------------------------------------------------


def test_oracle_chains_backend_hook_and_counts_violations():
    calls = []
    job = FakeJob()
    job.backend.on_complete = calls.append  # pre-existing hook survives
    oracle = ChaosOracle([SingleCompletion()])
    oracle.install(job)
    job.backend.on_complete((0, 0, 0))
    assert calls == [(0, 0, 0)]
    with pytest.raises(InvariantViolation):
        job.backend.on_complete((0, 0, 0))
    assert oracle.violations == 1


def test_oracle_installs_once():
    oracle = ChaosOracle([SingleCompletion()])
    oracle.install(FakeJob())
    with pytest.raises(InvariantViolation):
        oracle.install(FakeJob())


def test_oracle_verify_requires_install():
    with pytest.raises(InvariantViolation):
        ChaosOracle().verify()


def test_default_invariants_are_fresh_instances():
    first, second = default_invariants(), default_invariants()
    assert {inv.name for inv in first} == {
        "credit-conservation",
        "gradient-byte-conservation",
        "single-completion",
        "monotone-clock",
        "membership-accounting",
    }
    assert all(a is not b for a, b in zip(first, second))


def test_oracle_summary_keyed_by_invariant_name():
    oracle = ChaosOracle()
    summary = oracle.summary()
    assert set(summary) == {inv.name for inv in oracle.invariants}


# -- end to end ------------------------------------------------------------


def test_oracle_silent_on_clean_faulted_run():
    from repro.experiments.common import setup_cluster
    from repro.faults import FaultPlan
    from repro.training import SchedulerSpec
    from repro.training.job import TrainingJob
    from repro.training.runner import resolve_model

    oracle = ChaosOracle()
    job = TrainingJob(
        resolve_model("alexnet"),
        setup_cluster("mxnet", "ps", "rdma", 2),
        SchedulerSpec(
            kind="bytescheduler", partition_bytes=4e6, credit_bytes=16e6
        ),
        fault_plan=FaultPlan.parse(
            "seed:5;corrupt:s0.down@0-0.5%0.05;dup:w1.up@0-0.5%0.05"
        ),
        oracle=oracle,
    )
    job.run(measure=2)
    assert oracle.violations == 0
    stats = job.fabric.guard.stats
    assert stats.accounted()
    summary = oracle.summary()
    assert summary["credit-conservation"]["checks"] > 0
    assert summary["single-completion"]["completions"] > 0
