"""Unit tests for Layer/ModelSpec validation and derived quantities."""

import pytest

from repro.errors import ConfigError
from repro.models import Layer, ModelSpec, build_model, custom_model
from repro.models.base import BYTES_PER_PARAM


def test_layer_rejects_negative_index():
    with pytest.raises(ConfigError):
        Layer(-1, "bad", 10, 0.1, 0.1)


def test_layer_rejects_negative_bytes():
    with pytest.raises(ConfigError):
        Layer(0, "bad", -1, 0.1, 0.1)


def test_layer_rejects_negative_times():
    with pytest.raises(ConfigError):
        Layer(0, "bad", 1, -0.1, 0.1)
    with pytest.raises(ConfigError):
        Layer(0, "bad", 1, 0.1, -0.1)


def test_model_requires_layers():
    with pytest.raises(ConfigError):
        ModelSpec("empty", (), 32)


def test_model_rejects_noncontiguous_indices():
    layers = (Layer(0, "a", 1, 0.1, 0.1), Layer(2, "c", 1, 0.1, 0.1))
    with pytest.raises(ConfigError):
        ModelSpec("gappy", layers, 32)


def test_model_rejects_nonpositive_batch():
    layers = (Layer(0, "a", 1, 0.1, 0.1),)
    with pytest.raises(ConfigError):
        ModelSpec("m", layers, 0)


def test_totals():
    model = custom_model([100, 200, 300], [0.1, 0.2, 0.3], [0.2, 0.4, 0.6])
    assert model.total_bytes == 600
    assert model.largest_tensor_bytes == 300
    assert model.fp_total == pytest.approx(0.6)
    assert model.bp_total == pytest.approx(1.2)
    assert model.compute_time == pytest.approx(1.8)
    assert model.num_layers == 3
    assert model.layer_bytes() == (100, 200, 300)


def test_build_model_normalizes_weights():
    model = build_model(
        "m",
        [("a", 100, 1.0), ("b", 200, 3.0)],
        fp_total=0.4,
        bp_total=0.8,
        batch_size=8,
    )
    assert model.layers[0].fp_time == pytest.approx(0.1)
    assert model.layers[1].fp_time == pytest.approx(0.3)
    assert model.layers[0].bp_time == pytest.approx(0.2)
    assert model.layers[1].bp_time == pytest.approx(0.6)
    assert model.layers[0].param_bytes == 100 * BYTES_PER_PARAM


def test_build_model_requires_entries():
    with pytest.raises(ConfigError):
        build_model("m", [], 0.1, 0.1, 8)


def test_build_model_requires_positive_weight_sum():
    with pytest.raises(ConfigError):
        build_model("m", [("a", 1, 0.0)], 0.1, 0.1, 8)


def test_custom_model_requires_aligned_arrays():
    with pytest.raises(ConfigError):
        custom_model([1, 2], [0.1], [0.1, 0.2])
