"""Tests for synthetic model generators, incl. property-based checks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.models import custom_model, figure2_model, random_model, uniform_model


def test_uniform_model_shape():
    model = uniform_model(num_layers=5, layer_bytes=1000, fp_time=0.01, bp_time=0.02)
    assert model.num_layers == 5
    assert model.total_bytes == 5000
    assert model.fp_total == pytest.approx(0.05)
    assert model.bp_total == pytest.approx(0.10)


def test_random_model_reproducible():
    a = random_model(10, seed=7)
    b = random_model(10, seed=7)
    assert a.layer_bytes() == b.layer_bytes()
    assert [layer.fp_time for layer in a.layers] == [layer.fp_time for layer in b.layers]


def test_random_model_different_seeds_differ():
    assert random_model(10, seed=1).layer_bytes() != random_model(10, seed=2).layer_bytes()


def test_random_model_rejects_zero_layers():
    with pytest.raises(ConfigError):
        random_model(0, seed=1)


def test_figure2_model_is_three_layers():
    model = figure2_model()
    assert model.num_layers == 3
    # Layer 1 carries the big blocking tensor.
    assert model.layers[1].param_bytes == max(model.layer_bytes())


@given(
    num_layers=st.integers(min_value=1, max_value=40),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=40, deadline=None)
def test_random_model_always_valid(num_layers, seed):
    """Property: every generated model passes ModelSpec validation and
    has sizes within the configured bounds."""
    model = random_model(num_layers, seed=seed)
    assert model.num_layers == num_layers
    for layer in model.layers:
        assert layer.param_bytes >= 0
        assert layer.fp_time > 0
        assert layer.bp_time > 0


@given(
    sizes=st.lists(st.integers(min_value=0, max_value=10**9), min_size=1, max_size=30)
)
@settings(max_examples=40, deadline=None)
def test_custom_model_total_is_sum(sizes):
    model = custom_model(sizes, [0.001] * len(sizes), [0.002] * len(sizes))
    assert model.total_bytes == sum(sizes)
