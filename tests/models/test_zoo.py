"""Sanity checks for the zoo against published architecture numbers."""

import pytest

from repro.errors import ConfigError
from repro.models import (
    MODEL_BUILDERS,
    alexnet,
    get_model,
    resnet50,
    transformer,
    vgg16,
    vgg19,
)



def test_vgg16_total_params():
    model = vgg16()
    assert model.total_bytes / 4 == pytest.approx(138.36e6, rel=0.01)


def test_vgg16_largest_tensor_over_400mb():
    """The paper (§2.2): 'the largest tensor is over 400MB for VGG16'."""
    model = vgg16()
    assert model.largest_tensor_bytes > 400e6  # decimal MB, as the paper counts


def test_vgg16_smallest_tensor_is_small():
    """...and 'the smallest tensor is 256B' — ours is a few KB (we
    coalesce weights+biases), still ~5 orders below the largest."""
    model = vgg16()
    smallest = min(model.layer_bytes())
    assert smallest < 10_000
    assert model.largest_tensor_bytes / smallest > 10_000


def test_resnet50_total_params():
    model = resnet50()
    assert model.total_bytes / 4 == pytest.approx(25.5e6, rel=0.03)


def test_resnet50_less_communication_bound_than_vgg16():
    """ResNet50's bytes-per-compute-second is far below VGG16's — the
    reason its speedups are smallest in the paper."""
    vgg, res = vgg16(), resnet50()
    assert (res.total_bytes / res.compute_time) < 0.35 * (
        vgg.total_bytes / vgg.compute_time
    )


def test_transformer_total_params():
    model = transformer()
    assert model.total_bytes / 4 == pytest.approx(63.0e6, rel=0.02)


def test_transformer_reports_tokens():
    assert transformer().sample_unit == "tokens"
    assert transformer().batch_size == 512


def test_alexnet_total_params():
    model = alexnet()
    assert model.total_bytes / 4 == pytest.approx(61.0e6, rel=0.02)


def test_vgg19_larger_than_vgg16():
    assert vgg19().total_bytes > vgg16().total_bytes
    assert vgg19().compute_time > vgg16().compute_time


def test_backward_roughly_twice_forward():
    for builder in MODEL_BUILDERS.values():
        model = builder()
        assert model.bp_total == pytest.approx(2 * model.fp_total, rel=0.05)


def test_get_model_by_name():
    assert get_model("vgg16").name == "vgg16"


def test_get_model_unknown_raises():
    with pytest.raises(ConfigError, match="unknown model"):
        get_model("resnet152")


def test_all_zoo_models_validate():
    for name, builder in MODEL_BUILDERS.items():
        model = builder()
        assert model.name == name
        assert model.num_layers > 1
        assert model.compute_time > 0


def test_transformer_embedding_is_row_sparse():
    """The embedding cannot be sliced by the vanilla kvstore (§6.2's
    baseline imbalance source); everything else can."""
    model = transformer()
    assert model.layers[0].name == "embedding"
    assert model.layers[0].splittable is False
    assert all(layer.splittable for layer in model.layers[1:])


def test_cnn_layers_are_all_splittable():
    for builder in (vgg16, vgg19, resnet50, alexnet):
        assert all(layer.splittable for layer in builder().layers)


def test_bert_large_total_params():
    from repro.models import bert_large

    model = bert_large()
    assert model.total_bytes / 4 == pytest.approx(334.6e6, rel=0.03)
    assert model.layers[0].splittable is False
    assert model.sample_unit == "sequences"


def test_gpt2_total_params():
    from repro.models import gpt2

    model = gpt2()
    assert model.total_bytes / 4 == pytest.approx(124.4e6, rel=0.03)
    assert model.layers[0].splittable is False


def test_extended_zoo_models_train_end_to_end():
    from repro.training import ClusterSpec, SchedulerSpec, run_experiment

    cluster = ClusterSpec(machines=2, gpus_per_machine=1, bandwidth_gbps=25)
    for name in ("bert-large", "gpt2"):
        base = run_experiment(name, cluster, SchedulerSpec(kind="fifo"), measure=2)
        tuned = run_experiment(
            name,
            cluster,
            SchedulerSpec(kind="bytescheduler"),
            measure=2,
        )
        assert tuned.speed > base.speed  # both are communication-heavy
