"""Unit tests for the two-hop fabric model."""

import pytest

from repro.net import Fabric, Message, Transport
from repro.sim import Environment


def make_fabric(env, nodes=("w0", "w1", "s0"), bandwidth=100.0, overhead=0.0):
    return Fabric(env, nodes, bandwidth, Transport("t", overhead, 1.0))


def run_transfer(env, fabric, message):
    done = fabric.transfer(message).delivered

    def waiter(env):
        yield done
        return env.now

    process = env.process(waiter(env))
    env.run()
    return process.value


def test_remote_transfer_cuts_through():
    env = Environment()
    fabric = make_fabric(env, bandwidth=100.0)
    elapsed = run_transfer(env, fabric, Message("w0", "s0", 100.0))
    # Cut-through: the idle downlink received bytes while the uplink
    # serialised them; delivery is one hop latency after uplink exit.
    assert elapsed == pytest.approx(1.0, abs=1e-3)


def test_transfers_between_disjoint_pairs_run_in_parallel():
    env = Environment()
    fabric = make_fabric(env, nodes=("a", "b", "c", "d"), bandwidth=100.0)
    done_a = fabric.transfer(Message("a", "b", 100.0)).delivered
    done_c = fabric.transfer(Message("c", "d", 100.0)).delivered

    def waiter(env):
        yield env.all_of([done_a, done_c])
        return env.now

    process = env.process(waiter(env))
    env.run()
    assert process.value == pytest.approx(1.0, abs=1e-3)


def test_shared_destination_downlink_serializes():
    """Two workers pushing to one server contend on its downlink."""
    env = Environment()
    fabric = make_fabric(env, bandwidth=100.0)
    done_0 = fabric.transfer(Message("w0", "s0", 100.0)).delivered
    done_1 = fabric.transfer(Message("w1", "s0", 100.0)).delivered

    def waiter(env):
        yield env.all_of([done_0, done_1])
        return env.now

    process = env.process(waiter(env))
    env.run()
    # Uplinks run in parallel (1s); the server downlink must still
    # serialize a full service slot for the second message.
    assert process.value == pytest.approx(2.0, abs=1e-3)


def test_pipelined_partitions_reach_line_rate():
    """Many small partitions through two hops: steady-state throughput
    equals the bottleneck line rate (hop 2 of chunk k overlaps hop 1 of
    chunk k+1)."""
    env = Environment()
    fabric = make_fabric(env, bandwidth=100.0)
    chunks = [fabric.transfer(Message("w0", "s0", 100.0)).delivered for _ in range(10)]

    def waiter(env):
        yield env.all_of(chunks)
        return env.now

    process = env.process(waiter(env))
    env.run()
    # 10 chunks x 1s on the bottleneck; cut-through hides the fill.
    assert process.value == pytest.approx(10.0, abs=1e-3)


def test_duplex_directions_are_independent():
    env = Environment()
    fabric = make_fabric(env, bandwidth=100.0)
    push = fabric.transfer(Message("w0", "s0", 100.0)).delivered
    pull = fabric.transfer(Message("s0", "w0", 100.0)).delivered

    def waiter(env):
        yield env.all_of([push, pull])
        return env.now

    process = env.process(waiter(env))
    env.run()
    assert process.value == pytest.approx(1.0, abs=1e-3)


def test_local_transfer_uses_loopback():
    env = Environment()
    fabric = Fabric(
        env,
        ["w0"],
        bandwidth=100.0,
        transport=Transport("t", 0.0, 1.0),
        local_bandwidth=1000.0,
        local_transport=Transport("local", 0.0, 1.0),
    )
    elapsed = run_transfer(env, fabric, Message("w0", "w0", 1000.0))
    assert elapsed == pytest.approx(1.0)
    assert fabric.nic("w0").uplink.messages_sent == 0


def test_unknown_nodes_rejected():
    env = Environment()
    fabric = make_fabric(env)
    with pytest.raises(KeyError):
        fabric.transfer(Message("w0", "nope", 1.0))
    with pytest.raises(KeyError):
        fabric.transfer(Message("nope", "w0", 1.0))


def test_duplicate_node_rejected():
    env = Environment()
    fabric = make_fabric(env)
    with pytest.raises(ValueError):
        fabric.add_node("w0", 100.0)


def test_nodes_listed_in_insertion_order():
    env = Environment()
    fabric = make_fabric(env, nodes=("x", "y", "z"))
    assert fabric.nodes == ["x", "y", "z"]


def test_reset_counters_clears_all_nics():
    env = Environment()
    fabric = make_fabric(env)
    fabric.transfer(Message("w0", "s0", 100.0))
    env.run()
    fabric.reset_counters()
    assert fabric.nic("w0").uplink.bytes_sent == 0.0
    assert fabric.nic("s0").downlink.bytes_sent == 0.0
