"""Unit tests for the end-to-end delivery protocol.

Checksum + (epoch, seq) stamping, the receiver-side dedup window,
epoch fencing, NACK retransmits, and the injected-fault accounting
identities — all at the raw fabric level, with hand-built injectors.
"""

import math
import random

import pytest

from repro.net import Fabric, LinkIntegrityInjector, Message, Transport
from repro.sim import Environment

ALWAYS = ((0.0, math.inf, 0.999),)


def make_fabric(env, nodes=("w0", "w1", "s0"), bandwidth=100.0):
    return Fabric(env, nodes, bandwidth, Transport("t", 0.0, 1.0))


def inject(fabric, link, **windows):
    """Attach a deterministic injector to one link."""
    guard = fabric.enable_integrity()
    link.integrity = LinkIntegrityInjector(
        random.Random(1),
        guard.stats,
        dup_pending=fabric.dup_pending,
        **windows,
    )
    return guard


def drain(env):
    env.run()


# -- stamping and the happy path -------------------------------------------


def test_guard_stamps_epoch_and_checksum():
    env = Environment()
    fabric = make_fabric(env)
    fabric.enable_integrity()
    message = Message("w0", "s0", 50.0)
    assert message.checksum is None
    handle = fabric.transfer(message)
    assert message.epoch == 0
    assert message.checksum == message.expected_checksum()
    drain(env)
    assert handle.delivered.triggered


def test_no_guard_means_no_stamping():
    env = Environment()
    fabric = make_fabric(env)
    message = Message("w0", "s0", 50.0)
    fabric.transfer(message)
    assert message.checksum is None and message.epoch is None
    assert message.checksum_ok()  # unstamped always verifies


# -- corruption: detection, retransmit, exhaustion -------------------------


def test_corrupt_final_chunk_of_partitioned_tensor_is_retransmitted():
    """Four partitions of one tensor; only the last transit window is
    corrupted.  The final chunk must be detected, NACKed, and the clean
    retransmit delivered — the tensor still completes whole."""
    env = Environment()
    fabric = make_fabric(env)
    # Four 100 B chunks at 100 B/s: the fourth serialises in [3, 4).
    guard = inject(
        fabric, fabric.nics["s0"].downlink, corrupt=((2.5, 3.5, 0.999),)
    )
    handles = [
        fabric.transfer(Message("w0", "s0", 100.0, kind=f"chunk{i}"))
        for i in range(4)
    ]
    drain(env)
    assert all(handle.delivered.triggered for handle in handles)
    stats = guard.stats
    assert stats.corrupt_injected == 1
    assert stats.corrupt_detected == 1
    assert stats.retransmits == 1
    assert stats.accounted()


def test_retransmit_budget_exhausts_on_permanently_corrupting_link():
    env = Environment()
    fabric = make_fabric(env)
    guard = inject(fabric, fabric.nics["s0"].downlink, corrupt=ALWAYS)
    handle = fabric.transfer(Message("w0", "s0", 10.0))
    drain(env)
    assert not handle.delivered.triggered
    stats = guard.stats
    # Initial copy + 5 retransmits, each corrupted and detected.
    assert stats.corrupt_detected == 6
    assert stats.retransmits == 5
    assert stats.retransmit_exhausted == 1
    assert stats.accounted()


def test_double_corruption_counts_one_injection():
    """Corrupting an already-damaged copy (both hops roll corrupt) is
    one injected fault and one detection, not two."""
    from repro.net import DeliveryGuard

    guard = DeliveryGuard()
    message = Message("w0", "s0", 10.0)
    guard.stamp(message)
    uplink = LinkIntegrityInjector(
        random.Random(1), guard.stats, corrupt=ALWAYS
    )
    downlink = LinkIntegrityInjector(
        random.Random(2), guard.stats, corrupt=ALWAYS
    )
    assert uplink.roll(message, 0.0).corrupt
    assert downlink.roll(message, 0.0).corrupt
    assert guard.stats.corrupt_injected == 1  # one damaged copy, not two
    assert guard.admit(message) == "corrupt"
    assert guard.stats.corrupt_detected == 1


# -- duplication and the dedup window --------------------------------------


def test_injected_duplicate_is_absorbed():
    env = Environment()
    fabric = make_fabric(env)
    guard = inject(fabric, fabric.nics["w0"].uplink, dup=((0.0, 0.5, 0.999),))
    handle = fabric.transfer(Message("w0", "s0", 10.0))
    drain(env)
    assert handle.delivered.triggered
    stats = guard.stats
    assert stats.dup_injected == 1
    assert stats.dup_absorbed == 1
    assert stats.dedup_dropped == 1
    assert stats.accounted()


def test_corrupt_duplicate_keeps_both_identities():
    """A duplicate forged from a frame damaged on the uplink: two
    corrupted copies on the wire, one extra copy — both ledgers close."""
    env = Environment()
    fabric = make_fabric(env)
    guard = inject(
        fabric,
        fabric.nics["w0"].uplink,
        corrupt=((0.0, 0.05, 0.999),),
        dup=((0.0, 0.05, 0.999),),
    )
    handle = fabric.transfer(Message("w0", "s0", 10.0))
    drain(env)
    assert handle.delivered.triggered
    stats = guard.stats
    assert stats.corrupt_injected == 2  # original + forged copy
    assert stats.corrupt_detected == 2
    assert stats.dup_injected == 1
    assert stats.dup_absorbed == 1
    assert stats.accounted()


def test_dedup_window_eviction_readmits_old_seq():
    env = Environment()
    fabric = make_fabric(env)
    guard = fabric.enable_integrity(window=2)
    first = Message("w0", "s0", 10.0)
    fabric.transfer(first)
    for _ in range(2):
        fabric.transfer(Message("w0", "s0", 10.0))
    drain(env)
    assert guard.stats.window_evictions == 1  # first seq pushed out
    # A replay of the evicted seq is accepted again — the window was
    # too small for this traffic, and the eviction counter says so.
    replay = Message("w0", "s0", 10.0, uid=first.uid)
    handle = fabric.transfer(replay)
    drain(env)
    assert handle.delivered.triggered
    assert guard.stats.dedup_dropped == 0


def test_dup_pending_dies_with_wire_dropped_frame():
    """A frame that dies mid-wire takes its queued duplicate with it."""
    env = Environment()
    fabric = make_fabric(env)
    guard = inject(fabric, fabric.nics["w0"].uplink, dup=ALWAYS)
    fabric.set_liveness(lambda node: not (node == "s0" and env.now >= 0.05))
    handle = fabric.transfer(Message("w0", "s0", 10.0))
    drain(env)
    assert not handle.delivered.triggered
    stats = guard.stats
    assert stats.dup_injected == 1
    assert stats.dup_lost == 1
    assert stats.accounted()


# -- epoch fencing ---------------------------------------------------------


def test_stale_epoch_drop_counted_exactly_once():
    env = Environment()
    fabric = make_fabric(env)
    guard = fabric.enable_integrity()
    message = Message("w0", "s0", 10.0)
    handle = fabric.transfer(message)  # stamped with s0's epoch 0
    fabric.bump_incarnation("s0")  # s0 restarts while the bytes fly
    drain(env)
    assert not handle.delivered.triggered
    assert guard.stats.stale_dropped == 1
    # A fresh send stamps the new epoch and goes through.
    handle2 = fabric.transfer(Message("w0", "s0", 10.0))
    drain(env)
    assert handle2.delivered.triggered
    assert guard.stats.stale_dropped == 1


def test_bump_incarnation_without_guard_is_noop():
    env = Environment()
    fabric = make_fabric(env)
    fabric.bump_incarnation("s0")  # must not raise
    assert fabric.guard is None


# -- reordering ------------------------------------------------------------


def test_reorder_delays_delivery_without_extending_link_busy():
    env = Environment()
    fabric = make_fabric(env)
    guard = inject(
        fabric,
        fabric.nics["s0"].downlink,
        reorder=((0.0, 1.5, 0.999),),
    )
    downlink = fabric.nics["s0"].downlink
    handle = fabric.transfer(Message("w0", "s0", 100.0))

    def waiter(env):
        yield handle.delivered
        return env.now

    process = env.process(waiter(env))
    env.run()
    assert guard.stats.reorder_injected == 1
    # Delivery slips by the injector's lingering delay...
    assert process.value == pytest.approx(1.0 + 500e-6, abs=1e-4)
    # ...but the link freed on schedule: the switch held the message,
    # not the wire.
    assert downlink.busy_until == pytest.approx(1.0, abs=1e-4)
