"""Unit tests for the FIFO link model."""

import pytest

from repro.net import Link, Message, Transport
from repro.sim import Environment, Trace


def make_link(env, bandwidth=100.0, overhead=0.0, trace=None):
    return Link(env, "n0.up", bandwidth, Transport("t", overhead, 1.0), trace)


def test_single_message_takes_size_over_bandwidth():
    env = Environment()
    link = make_link(env, bandwidth=100.0)
    done = link.transmit(Message("a", "b", 250.0))

    def waiter(env):
        yield done
        return env.now

    process = env.process(waiter(env))
    env.run()
    assert process.value == pytest.approx(2.5)


def test_messages_serialize_fifo():
    env = Environment()
    link = make_link(env, bandwidth=100.0)
    finish_times = []

    def sender(env):
        first = link.transmit(Message("a", "b", 100.0))
        second = link.transmit(Message("a", "b", 100.0))
        yield first
        finish_times.append(env.now)
        yield second
        finish_times.append(env.now)

    env.process(sender(env))
    env.run()
    assert finish_times == [pytest.approx(1.0), pytest.approx(2.0)]


def test_no_preemption_small_message_waits_behind_large():
    """The FIFO property the paper exploits: a tiny message enqueued
    after a huge one cannot finish before it."""
    env = Environment()
    link = make_link(env, bandwidth=100.0)
    order = []

    def sender(env):
        big = link.transmit(Message("a", "b", 1000.0, kind="big"))
        small = link.transmit(Message("a", "b", 1.0, kind="small"))
        big.callbacks.append(lambda evt: order.append("big"))
        small.callbacks.append(lambda evt: order.append("small"))
        yield env.all_of([big, small])

    env.process(sender(env))
    env.run()
    assert order == ["big", "small"]


def test_overhead_applies_per_message():
    env = Environment()
    link = make_link(env, bandwidth=100.0, overhead=0.5)
    events = [link.transmit(Message("a", "b", 100.0)) for _ in range(3)]

    def waiter(env):
        yield env.all_of(events)
        return env.now

    process = env.process(waiter(env))
    env.run()
    # Each message: 1s wire + 0.5s overhead, serialized.
    assert process.value == pytest.approx(4.5)


def test_idle_gap_then_transmit_starts_immediately():
    env = Environment()
    link = make_link(env, bandwidth=100.0)

    def sender(env):
        yield env.timeout(10.0)
        done = link.transmit(Message("a", "b", 100.0))
        yield done
        return env.now

    process = env.process(sender(env))
    env.run()
    assert process.value == pytest.approx(11.0)


def test_queue_delay_reflects_backlog():
    env = Environment()
    link = make_link(env, bandwidth=100.0)
    link.transmit(Message("a", "b", 500.0))
    assert link.queue_delay == pytest.approx(5.0)


def test_counters_accumulate():
    env = Environment()
    link = make_link(env, bandwidth=100.0, overhead=0.1)
    link.transmit(Message("a", "b", 100.0))
    link.transmit(Message("a", "b", 300.0))
    env.run()
    assert link.bytes_sent == 400.0
    assert link.messages_sent == 2
    assert link.busy_time == pytest.approx(4.2)


def test_reset_counters():
    env = Environment()
    link = make_link(env)
    link.transmit(Message("a", "b", 100.0))
    env.run()
    link.reset_counters()
    assert (link.bytes_sent, link.messages_sent, link.busy_time) == (0.0, 0, 0.0)


def test_trace_records_link_spans():
    env = Environment()
    trace = Trace(env)
    link = make_link(env, bandwidth=100.0, trace=trace)
    link.transmit(Message("a", "b", 200.0))
    env.run()
    (span,) = list(trace.by_category("link"))
    assert span.name == "n0.up"
    assert span.duration == pytest.approx(2.0)


def test_invalid_bandwidth_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        make_link(env, bandwidth=0.0)


def test_message_negative_size_rejected():
    with pytest.raises(ValueError):
        Message("a", "b", -5.0)


def test_message_records_enqueue_time():
    env = Environment()
    link = make_link(env)
    message = Message("a", "b", 10.0)

    def sender(env):
        yield env.timeout(3.0)
        link.transmit(message)

    env.process(sender(env))
    env.run()
    assert message.enqueued_at == 3.0
