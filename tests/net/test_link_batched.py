"""Batched link completions: the callback path vs the classic Event path.

``transmit(..., callback=...)`` rides the link's completion FIFO and a
bare deferred wake-up instead of allocating a Timeout event per
message.  The contract: callbacks fire at exactly the same simulated
times, in exactly the same order, as the events the classic API would
have returned — batching is an allocation optimisation, not a semantic
change.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import Link, Message, Transport
from repro.sim import Environment

BANDWIDTH = 100.0


def make_link(env):
    return Link(env, "n0.up", BANDWIDTH, Transport("t", 0.0, 1.0))


sizes = st.lists(
    st.floats(min_value=1.0, max_value=1e4), min_size=1, max_size=15
)
offsets = st.lists(
    st.floats(min_value=0.0, max_value=200.0), min_size=15, max_size=15
)


@given(sizes=sizes, offsets=offsets, cut=st.lists(st.booleans(), min_size=15, max_size=15))
@settings(max_examples=60, deadline=None)
def test_callback_path_matches_event_path(sizes, offsets, cut):
    def run(use_callback):
        env = Environment()
        link = make_link(env)
        completions = []
        for i, (size, offset, use_cut) in enumerate(zip(sizes, offsets, cut)):
            message = Message("a", "b", size)
            if use_callback:
                record = lambda msg, i=i: completions.append((env.now, i))
                if use_cut:
                    link.transmit_cut_through(
                        message, available_at=offset, callback=record
                    )
                else:
                    link.transmit(message, callback=record)
            else:
                if use_cut:
                    evt = link.transmit_cut_through(message, available_at=offset)
                else:
                    evt = link.transmit(message)
                evt.callbacks.append(
                    lambda e, i=i: completions.append((env.now, i))
                )
        env.run()
        return completions, link.busy_time, link.bytes_sent

    assert run(True) == run(False)


def test_equal_end_completions_coalesce_in_fifo_order():
    # Two zero-size messages complete at the same instant; the first
    # wake-up drains both, in enqueue order.
    env = Environment()
    link = make_link(env)
    order = []
    link.transmit(Message("a", "b", 0.0), callback=lambda m: order.append("first"))
    link.transmit(Message("a", "b", 0.0), callback=lambda m: order.append("second"))
    env.run()
    assert order == ["first", "second"]
    assert not link._fifo


def test_callback_may_enqueue_more_traffic():
    # A completion callback that transmits again must not corrupt the
    # FIFO: the new frame lands behind the drain cursor.
    env = Environment()
    link = make_link(env)
    hops = []

    def relay(message):
        hops.append(env.now)
        if len(hops) < 3:
            link.transmit(message, callback=relay)

    link.transmit(Message("a", "b", 100.0), callback=relay)
    env.run()
    assert hops == pytest.approx([1.0, 2.0, 3.0])
    assert link.messages_sent == 3


def test_past_available_at_fires_without_time_travel():
    # Cut-through with an already-elapsed arrival clamps to now: the
    # callback fires this instant, never in the simulated past.
    env = Environment()
    link = make_link(env)
    env.timeout(5.0).callbacks.append(
        lambda _evt: link.transmit_cut_through(
            Message("a", "b", 1.0),
            available_at=0.0,
            callback=lambda m: fired.append(env.now),
        )
    )
    fired = []
    env.run()
    assert len(fired) == 1
    assert fired[0] >= 5.0
