"""Property tests: link busy-time accounting under cut-through + faults.

``busy_time`` feeds the busy-fraction metric in link snapshots and run
reports, so it must mean "seconds spent serialising bytes".  The
pre-fix ``transmit_cut_through`` charged ``end - start`` even when
``end`` was pinned by ``available_at`` (a link waiting on slow upstream
bytes), counting idle wait as busy and overstating utilisation — on a
healthy link, busy_time exceeded the sum of service times.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import Link, Message, Transport
from repro.sim import Environment

BANDWIDTH = 100.0


def make_link(env, windows=()):
    link = Link(env, "n0.up", BANDWIDTH, Transport("t", 0.0, 1.0))
    if windows:
        link.set_fault_windows(windows)
    return link


sizes = st.lists(
    st.floats(min_value=1.0, max_value=1e4), min_size=1, max_size=12
)
offsets = st.lists(
    st.floats(min_value=0.0, max_value=200.0), min_size=12, max_size=12
)


def fault_windows(bounds, factors):
    """Sorted, disjoint (start, end, factor) triples from raw draws."""
    points = sorted(bounds)
    windows = []
    for index in range(0, len(points) - 1, 2):
        start, end = points[index], points[index + 1]
        if end > start:
            windows.append((start, end, factors[index // 2]))
    return tuple(windows)


window_bounds = st.lists(
    st.floats(min_value=0.0, max_value=300.0),
    min_size=4,
    max_size=8,
    unique=True,
)
window_factors = st.lists(
    st.floats(min_value=0.1, max_value=1.0), min_size=4, max_size=4
)


@given(sizes=sizes, offsets=offsets)
@settings(max_examples=100, deadline=None)
def test_healthy_busy_time_is_sum_of_service_times(sizes, offsets):
    # Cut-through never changes how long serialisation takes on a
    # healthy link — only *when* the slot is placed.  The pre-fix
    # accounting failed this whenever available_at pinned the end.
    env = Environment()
    link = make_link(env)
    for size, offset in zip(sizes, offsets):
        link.transmit_cut_through(Message("a", "b", size), available_at=offset)
    expected = sum(size / BANDWIDTH for size in sizes)
    assert link.busy_time == pytest.approx(expected)


@given(
    sizes=sizes,
    offsets=offsets,
    bounds=window_bounds,
    factors=window_factors,
    plain=st.lists(st.booleans(), min_size=12, max_size=12),
)
@settings(max_examples=100, deadline=None)
def test_busy_time_never_exceeds_wall_coverage(
    sizes, offsets, bounds, factors, plain
):
    # Serialisation slots are disjoint (FIFO), so total busy time is
    # bounded by the wall-clock span the link was occupied — with or
    # without degradation windows, mixing plain and cut-through sends.
    env = Environment()
    link = make_link(env, windows=fault_windows(bounds, factors))
    for size, offset, use_plain in zip(sizes, offsets, plain):
        message = Message("a", "b", size)
        if use_plain:
            link.transmit(message)
        else:
            link.transmit_cut_through(message, available_at=offset)
    wall = link.busy_until - env.now
    assert link.busy_time <= wall + 1e-9
    # Degradation can only stretch serialisation, never shrink it.
    minimum = sum(size / BANDWIDTH for size in sizes)
    assert link.busy_time >= minimum - 1e-9


@given(sizes=sizes, offsets=offsets)
@settings(max_examples=50, deadline=None)
def test_cut_through_completion_never_precedes_available_at(sizes, offsets):
    env = Environment()
    link = make_link(env)
    horizon = env.now
    for size, offset in zip(sizes, offsets):
        link.transmit_cut_through(Message("a", "b", size), available_at=offset)
        assert link.busy_until >= offset
        assert link.busy_until >= horizon  # FIFO horizon is monotonic
        horizon = link.busy_until


def test_backlogged_link_does_not_charge_idle_tail():
    # Deterministic pin of the fixed behaviour: one message in service
    # until t=1, then a cut-through message whose bytes only finish
    # arriving at t=10.  The link serialises for 2 × 1 s total; the 8 s
    # gap waiting on upstream is idle, not busy (pre-fix charged 10 s).
    env = Environment()
    link = make_link(env)
    link.transmit(Message("a", "b", 100.0))
    link.transmit_cut_through(Message("a", "b", 100.0), available_at=10.0)
    assert link.busy_until == pytest.approx(10.0)
    assert link.busy_time == pytest.approx(2.0)


def test_blackout_window_not_charged_as_busy():
    # Regression pin for the factor-0 inconsistency: a blacked-out link
    # holds the message but moves no bytes.  100 B at 100 B/s starting
    # at t=0 with a [0.5, 1.5] blackout serialises 0.5 s, stalls 1 s,
    # then finishes the last 0.5 s — wall span 2 s, busy 1 s.  The
    # pre-fix transmit() charged the full 2 s while cut-through's
    # accounting disagreed on the same wire history.
    env = Environment()
    link = make_link(env, windows=((0.5, 1.5, 0.0),))
    link.transmit(Message("a", "b", 100.0))
    assert link.busy_until == pytest.approx(2.0)
    assert link.busy_time == pytest.approx(1.0)


@given(sizes=sizes, bounds=window_bounds)
@settings(max_examples=60, deadline=None)
def test_blackout_busy_time_agrees_between_paths(sizes, bounds):
    # Under factor-0 windows both transmit paths must charge the exact
    # same busy time for the same message sequence: the serialisation
    # slots are identical, and stalls are idle on both.
    windows = fault_windows(bounds, [0.0, 0.0, 0.0, 0.0])
    env_plain = Environment()
    env_cut = Environment()
    plain = make_link(env_plain, windows=windows)
    cut = make_link(env_cut, windows=windows)
    for size in sizes:
        plain.transmit(Message("a", "b", size))
        cut.transmit_cut_through(Message("a", "b", size), available_at=0.0)
    assert plain.busy_time == pytest.approx(cut.busy_time)
    # With factor 0 every non-stalled second moves full-rate bytes, so
    # busy time is exactly the healthy service time.
    assert plain.busy_time == pytest.approx(
        sum(size / BANDWIDTH for size in sizes)
    )
