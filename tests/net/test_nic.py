"""Duplex NIC error paths: saturation, loopback, faults, zero bytes."""

import random

import pytest

from repro.faults import TransportFault
from repro.net import DuplexNIC, Fabric, FaultyTransport, Message, Transport
from repro.sim import Environment

BANDWIDTH = 100.0  # bytes/second: sizes below read as seconds directly
IDEAL = Transport("ideal", overhead=0.0, efficiency=1.0)


def make_fabric(env, nodes=("a", "b")):
    return Fabric(env, nodes, BANDWIDTH, IDEAL, hop_latency=0.0)


def collect(event, into):
    event.callbacks.append(lambda evt: into.append((evt.env.now, evt.value)))


def test_duplex_directions_are_independent():
    """Saturating the uplink must not delay the downlink, and vice
    versa: full duplex is what tensor partitioning exploits (§2.2)."""
    env = Environment()
    nic = DuplexNIC(env, "a", BANDWIDTH, IDEAL)
    done = []
    for _ in range(3):
        collect(nic.uplink.transmit(Message("a", "b", 100.0)), done)
        collect(nic.downlink.transmit(Message("b", "a", 100.0)), done)
    env.run()
    # Three 1s messages per direction, concurrently: 3s total, not 6s.
    assert env.now == pytest.approx(3.0)
    assert nic.uplink.busy_time == pytest.approx(3.0)
    assert nic.downlink.busy_time == pytest.approx(3.0)
    assert len(done) == 6


def test_simultaneous_duplex_saturation_through_fabric():
    """Counter-flowing transfers a→b and b→a share no queue."""
    env = Environment()
    fabric = make_fabric(env)
    delivered = []
    for _ in range(4):
        collect(fabric.transfer(Message("a", "b", 100.0)).delivered, delivered)
        collect(fabric.transfer(Message("b", "a", 100.0)).delivered, delivered)
    env.run()
    assert len(delivered) == 8
    # Four 1s messages per direction; cut-through makes the second hop
    # (the receiver's idle downlink) essentially free.
    assert env.now == pytest.approx(4.0, rel=1e-6)
    assert fabric.nic("a").uplink.busy_time == pytest.approx(4.0)
    assert fabric.nic("a").downlink.busy_time == pytest.approx(4.0)


def test_zero_byte_message_traverses_fabric():
    env = Environment()
    fabric = make_fabric(env)
    delivered = []
    handle = fabric.transfer(Message("a", "b", 0.0))
    collect(handle.delivered, delivered)
    env.run()
    assert len(delivered) == 1
    assert delivered[0][0] == pytest.approx(0.0)  # zero size, zero overhead
    assert fabric.nic("a").uplink.messages_sent == 1
    assert fabric.nic("a").uplink.bytes_sent == 0.0


def test_negative_size_message_rejected():
    with pytest.raises(ValueError):
        Message("a", "b", -1.0)


def test_loopback_blackout_stalls_local_transfer():
    """A blackout window on the loopback delays a local transfer until
    the window closes, then service resumes at full rate."""
    env = Environment()
    fabric = make_fabric(env)
    loop = fabric.loopback("a")
    loop.set_fault_windows(((0.0, 0.5, 0.0),))  # dark until t=0.5
    size = fabric._local_bandwidth * 0.1  # 0.1s of loopback service
    delivered = []
    collect(fabric.transfer(Message("a", "a", size)).delivered, delivered)
    env.run()
    overhead = fabric._local_transport.overhead
    assert delivered[0][0] == pytest.approx(0.5 + 0.1 + overhead)


def test_loopback_under_lossy_transport():
    """Wrapping the loopback's transport with FaultyTransport charges
    retransmissions to local transfers too."""
    env = Environment()
    fabric = make_fabric(env)
    loop = fabric.loopback("a")

    class AlwaysLose(random.Random):
        def random(self):
            return 0.0

    fault = TransportFault(loss_probability=0.5, retransmit_penalty=0.0, max_losses=1)
    loop.transport = FaultyTransport(loop.transport, fault, AlwaysLose())
    size = fabric._local_bandwidth * 0.1
    delivered = []
    collect(fabric.transfer(Message("a", "a", size)).delivered, delivered)
    env.run()
    overhead = fabric._local_transport.overhead
    # One guaranteed loss: the message serialises twice.
    assert delivered[0][0] == pytest.approx(2 * (0.1 + overhead))
    assert loop.transport.messages_lost == 1


def test_uplink_blackout_backs_up_fifo_order():
    """Messages queued behind a blackout drain in FIFO order after it."""
    env = Environment()
    fabric = make_fabric(env)
    fabric.nic("a").uplink.set_fault_windows(((0.0, 2.0, 0.0),))
    delivered = []
    for tag in range(3):
        collect(
            fabric.transfer(Message("a", "b", 100.0, payload=tag)).delivered,
            delivered,
        )
    env.run()
    tags = [message.payload for _t, message in delivered]
    assert tags == [0, 1, 2]
    times = [t for t, _message in delivered]
    # 2s dark, then three 1s services back to back.
    assert times == pytest.approx([3.0, 4.0, 5.0])
