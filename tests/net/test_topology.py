"""Unit tests for racked topologies and the hierarchical fabric."""

import pytest

from repro.errors import ConfigError
from repro.net import Fabric, HierarchicalFabric, Message, Transport, TopologySpec
from repro.sim import Environment


def make_hier(env, racks=2, per_rack=2, oversub=2.0, bandwidth=100.0):
    topology = TopologySpec(
        racks=racks, machines_per_rack=per_rack, oversubscription=oversub
    )
    return HierarchicalFabric(
        env, topology, bandwidth, Transport("t", 0.0, 1.0)
    )


def run_transfer(env, fabric, message):
    done = fabric.transfer(message).delivered

    def waiter(env):
        yield done
        return env.now

    process = env.process(waiter(env))
    env.run()
    return process.value


# -- TopologySpec ----------------------------------------------------------


def test_topology_shape_and_names():
    topology = TopologySpec(racks=2, machines_per_rack=3)
    assert topology.machines == 6
    assert topology.machine_names() == (
        "r0m0", "r0m1", "r0m2", "r1m0", "r1m1", "r1m2",
    )
    assert [topology.rack_of_index(m) for m in range(6)] == [0, 0, 0, 1, 1, 1]


def test_topology_validation():
    with pytest.raises(ConfigError):
        TopologySpec(racks=0, machines_per_rack=2)
    with pytest.raises(ConfigError):
        TopologySpec(racks=1, machines_per_rack=0)
    with pytest.raises(ConfigError):
        TopologySpec(racks=1, machines_per_rack=2, oversubscription=0.5)
    with pytest.raises(ConfigError):
        TopologySpec(racks=1, machines_per_rack=2).rack_of_index(2)


def test_uplink_bandwidth_is_oversubscribed_nic_sum():
    topology = TopologySpec(racks=2, machines_per_rack=8, oversubscription=4.0)
    assert topology.uplink_bandwidth(100.0) == pytest.approx(200.0)
    full = TopologySpec(racks=2, machines_per_rack=8, oversubscription=1.0)
    assert full.uplink_bandwidth(100.0) == pytest.approx(800.0)


# -- HierarchicalFabric routing --------------------------------------------


def test_same_rack_matches_flat_fabric():
    env_flat = Environment()
    flat = Fabric(
        env_flat, ("r0m0", "r0m1"), 100.0, Transport("t", 0.0, 1.0)
    )
    flat_time = run_transfer(env_flat, flat, Message("r0m0", "r0m1", 100.0))

    env_hier = Environment()
    hier = make_hier(env_hier)
    hier_time = run_transfer(env_hier, hier, Message("r0m0", "r0m1", 100.0))
    assert hier_time == pytest.approx(flat_time)
    # The rack links never saw the transfer.
    assert all(link.bytes_sent == 0 for link in hier.rack_uplinks.values())


def test_cross_rack_takes_rack_links_and_costs_more():
    env = Environment()
    hier = make_hier(env)
    same = run_transfer(env, hier, Message("r0m0", "r0m1", 100.0))

    env2 = Environment()
    hier2 = make_hier(env2)
    cross = run_transfer(env2, hier2, Message("r0m0", "r1m0", 100.0))
    assert cross > same
    assert hier2.rack_uplinks[0].bytes_sent == 100.0
    assert hier2.rack_downlinks[1].bytes_sent == 100.0
    assert hier2.rack_uplinks[1].bytes_sent == 0
    assert hier2.rack_downlinks[0].bytes_sent == 0


def test_oversubscribed_uplink_serializes_scattered_tenants():
    """Two cross-rack flows from one rack queue on the shared uplink."""
    env = Environment()
    hier = make_hier(env, per_rack=2, oversub=2.0, bandwidth=100.0)
    done = [
        hier.transfer(Message("r0m0", "r1m0", 100.0)).delivered,
        hier.transfer(Message("r0m1", "r1m1", 100.0)).delivered,
    ]

    def waiter(env):
        yield env.all_of(done)
        return env.now

    process = env.process(waiter(env))
    env.run()
    # Each NIC serialises its flow in 1 s; the 100 B/s shared uplink
    # (2 NICs / 2:1 oversub) then carries 200 B total: 2 s dominate.
    assert process.value == pytest.approx(2.0, rel=0.05)
    assert hier.rack_uplinks[0].bytes_sent == 200.0


def test_alias_routes_through_host_machine():
    env = Environment()
    hier = make_hier(env)
    hier.add_alias("jobA.w0", "r0m0")
    hier.add_alias("jobA.w1", "r1m0")
    assert hier.rack_of("jobA.w1") == 1
    elapsed = run_transfer(env, hier, Message("jobA.w0", "jobA.w1", 100.0))
    assert elapsed > 0
    # Alias traffic is accounted to the host machine's NIC.
    assert hier.nics["r0m0"].uplink.bytes_sent == 100.0
    assert hier.rack_uplinks[0].bytes_sent == 100.0


def test_alias_same_machine_uses_loopback():
    env = Environment()
    hier = make_hier(env)
    hier.add_alias("jobA.w0", "r0m0")
    hier.add_alias("jobB.w0", "r0m0")
    run_transfer(env, hier, Message("jobA.w0", "jobB.w0", 100.0))
    assert hier.nics["r0m0"].uplink.bytes_sent == 0
    assert hier.loopback("r0m0").bytes_sent == 100.0


def test_alias_validation():
    env = Environment()
    hier = make_hier(env)
    hier.add_alias("a", "r0m0")
    with pytest.raises(KeyError):
        hier.add_alias("b", "no-such-machine")
    with pytest.raises(ValueError):
        hier.add_alias("a", "r0m1")  # alias taken
    with pytest.raises(ValueError):
        hier.add_alias("r0m1", "r0m0")  # shadows a machine
    # Aliases do not pollute the machine list.
    assert set(hier.nodes) == set(hier.topology.machine_names())
    assert hier.has_node("a") and hier.has_node("r0m0")
    assert not hier.has_node("b")


def test_reset_counters_clears_rack_links():
    env = Environment()
    hier = make_hier(env)
    run_transfer(env, hier, Message("r0m0", "r1m0", 100.0))
    assert hier.rack_uplinks[0].bytes_sent > 0
    hier.reset_counters()
    assert all(link.bytes_sent == 0 for link in hier.rack_uplinks.values())
    assert all(link.bytes_sent == 0 for link in hier.rack_downlinks.values())
