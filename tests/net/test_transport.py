"""Unit tests for transport cost models."""

import pytest

from repro.net import LocalTransport, RDMATransport, TCPTransport, Transport
from repro.units import MB, gbps, to_gbps


def test_wire_time_is_size_over_effective_bandwidth_plus_overhead():
    transport = Transport("t", overhead=0.001, efficiency=0.5)
    # 100 bytes over 100 B/s at 50% efficiency -> 2s + 1ms overhead.
    assert transport.wire_time(100, 100) == pytest.approx(2.001)


def test_zero_size_message_still_pays_overhead():
    transport = Transport("t", overhead=0.0003, efficiency=1.0)
    assert transport.wire_time(0, gbps(10)) == pytest.approx(0.0003)


def test_tcp_has_more_overhead_than_rdma():
    tcp, rdma = TCPTransport(), RDMATransport()
    assert tcp.overhead > rdma.overhead
    assert tcp.efficiency < rdma.efficiency


def test_rdma_faster_than_tcp_for_same_message():
    tcp, rdma = TCPTransport(), RDMATransport()
    bandwidth = gbps(100)
    assert rdma.wire_time(4 * MB, bandwidth) < tcp.wire_time(4 * MB, bandwidth)


def test_local_transport_is_cheapest():
    local = LocalTransport()
    assert local.overhead < RDMATransport().overhead


def test_invalid_overhead_rejected():
    with pytest.raises(ValueError):
        Transport("t", overhead=-1.0, efficiency=1.0)


@pytest.mark.parametrize("efficiency", [0.0, -0.5, 1.5])
def test_invalid_efficiency_rejected(efficiency):
    with pytest.raises(ValueError):
        Transport("t", overhead=0.0, efficiency=efficiency)


def test_negative_size_rejected():
    with pytest.raises(ValueError):
        TCPTransport().wire_time(-1, gbps(1))


def test_nonpositive_bandwidth_rejected():
    with pytest.raises(ValueError):
        TCPTransport().wire_time(1, 0)


def test_gbps_round_trip():
    assert to_gbps(gbps(25)) == pytest.approx(25.0)


def test_gbps_rejects_nonpositive():
    with pytest.raises(ValueError):
        gbps(0)
