"""Unit tests for transport cost models."""

import random

import pytest

from repro.faults import TransportFault
from repro.net import (
    FaultyTransport,
    LocalTransport,
    RDMATransport,
    TCPTransport,
    Transport,
)
from repro.units import MB, gbps, to_gbps


def test_wire_time_is_size_over_effective_bandwidth_plus_overhead():
    transport = Transport("t", overhead=0.001, efficiency=0.5)
    # 100 bytes over 100 B/s at 50% efficiency -> 2s + 1ms overhead.
    assert transport.wire_time(100, 100) == pytest.approx(2.001)


def test_zero_size_message_still_pays_overhead():
    transport = Transport("t", overhead=0.0003, efficiency=1.0)
    assert transport.wire_time(0, gbps(10)) == pytest.approx(0.0003)


def test_tcp_has_more_overhead_than_rdma():
    tcp, rdma = TCPTransport(), RDMATransport()
    assert tcp.overhead > rdma.overhead
    assert tcp.efficiency < rdma.efficiency


def test_rdma_faster_than_tcp_for_same_message():
    tcp, rdma = TCPTransport(), RDMATransport()
    bandwidth = gbps(100)
    assert rdma.wire_time(4 * MB, bandwidth) < tcp.wire_time(4 * MB, bandwidth)


def test_local_transport_is_cheapest():
    local = LocalTransport()
    assert local.overhead < RDMATransport().overhead


def test_invalid_overhead_rejected():
    with pytest.raises(ValueError):
        Transport("t", overhead=-1.0, efficiency=1.0)


@pytest.mark.parametrize("efficiency", [0.0, -0.5, 1.5])
def test_invalid_efficiency_rejected(efficiency):
    with pytest.raises(ValueError):
        Transport("t", overhead=0.0, efficiency=efficiency)


def test_negative_size_rejected():
    with pytest.raises(ValueError):
        TCPTransport().wire_time(-1, gbps(1))


def test_nonpositive_bandwidth_rejected():
    with pytest.raises(ValueError):
        TCPTransport().wire_time(1, 0)


def test_gbps_round_trip():
    assert to_gbps(gbps(25)) == pytest.approx(25.0)


def test_gbps_rejects_nonpositive():
    with pytest.raises(ValueError):
        gbps(0)


# -- FaultyTransport --------------------------------------------------------


class _AlwaysBelow(random.Random):
    """An RNG whose draws always land under any positive probability."""

    def random(self):
        return 0.0


class _AlwaysAbove(random.Random):
    def random(self):
        return 0.999999


def test_faulty_transport_is_transparent_when_draws_miss():
    inner = RDMATransport()
    faulty = FaultyTransport(
        inner, TransportFault(loss_probability=0.5), _AlwaysAbove()
    )
    assert faulty.wire_time(4 * MB, gbps(100)) == inner.wire_time(4 * MB, gbps(100))
    assert faulty.messages_lost == 0


def test_faulty_transport_loss_is_capped_at_max_losses():
    inner = Transport("t", overhead=0.001, efficiency=1.0)
    fault = TransportFault(
        loss_probability=0.99, retransmit_penalty=0.01, max_losses=3
    )
    faulty = FaultyTransport(inner, fault, _AlwaysBelow())
    base = inner.wire_time(100, 100.0)
    # Every draw "loses": exactly max_losses retransmissions, then done.
    assert faulty.wire_time(100, 100.0) == pytest.approx(base + 3 * (base + 0.01))
    assert faulty.messages_lost == 3


def test_faulty_transport_delay_adds_fixed_latency():
    inner = RDMATransport()
    fault = TransportFault(delay_probability=0.5, delay=0.002)
    faulty = FaultyTransport(inner, fault, _AlwaysBelow())
    base = inner.wire_time(MB, gbps(10))
    assert faulty.wire_time(MB, gbps(10)) == pytest.approx(base + 0.002)
    assert faulty.messages_delayed == 1


def test_faulty_transport_zero_byte_message_still_pays_overhead_and_faults():
    inner = Transport("t", overhead=0.0003, efficiency=1.0)
    fault = TransportFault(loss_probability=0.9, retransmit_penalty=0.0, max_losses=1)
    faulty = FaultyTransport(inner, fault, _AlwaysBelow())
    # A zero-byte push still serialises its overhead — twice, when lost.
    assert faulty.wire_time(0, gbps(10)) == pytest.approx(0.0006)


def test_faulty_transport_is_deterministic_per_seed():
    inner = RDMATransport()
    fault = TransportFault(loss_probability=0.3, delay_probability=0.2, delay=0.001)

    def times(seed):
        faulty = FaultyTransport(inner, fault, random.Random(seed))
        return [faulty.wire_time(MB, gbps(100)) for _ in range(200)]

    assert times(7) == times(7)
    assert times(7) != times(8)


def test_faulty_transport_preserves_validation():
    faulty = FaultyTransport(
        RDMATransport(), TransportFault(loss_probability=0.1), random.Random(0)
    )
    with pytest.raises(ValueError):
        faulty.wire_time(-1, gbps(1))
    with pytest.raises(ValueError):
        faulty.wire_time(1, 0)
