"""Structural validation of the trace exporters.

The chrome-trace output must hold up in ``chrome://tracing`` /
Perfetto: every complete event carries pid/tid/ts/dur/name, timestamps
are sorted, and metadata events name every referenced track.
"""

import json

import pytest

from repro.obs import (
    chrome_trace,
    job_chrome_trace,
    load_trace_file,
    span_log_lines,
    summarize_trace,
    write_chrome_trace,
    write_span_log,
)
from repro.sim import Environment, Trace
from repro.training import ClusterSpec, SchedulerSpec
from repro.training.job import TrainingJob
from repro.training.runner import resolve_model


def make_trace():
    env = Environment()
    trace = Trace(env)
    trace.span("link", "n0.up", 0.0, 1.5, size=100.0)
    trace.span("link", "n1.up", 0.5, 2.0, size=50.0)
    trace.span("timeout", "push", 1.0, 3.0)
    trace.point("retry", "push")
    return trace


def complete_events(doc):
    return [event for event in doc["traceEvents"] if event["ph"] == "X"]


def test_chrome_trace_structure():
    doc = chrome_trace(make_trace())
    assert doc["displayTimeUnit"] == "ms"
    events = doc["traceEvents"]
    assert events, "no events exported"
    for event in events:
        assert event["ph"] in ("M", "X", "i")
        assert isinstance(event["pid"], int)
        assert isinstance(event["tid"], int)
        assert "name" in event
        if event["ph"] == "X":
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
        elif event["ph"] == "i":
            assert event["ts"] >= 0.0


def test_chrome_trace_timestamps_sorted_and_microseconds():
    doc = chrome_trace(make_trace())
    stamped = [e for e in doc["traceEvents"] if e["ph"] != "M"]
    timestamps = [event["ts"] for event in stamped]
    assert timestamps == sorted(timestamps)
    # Seconds → microseconds: the 1.5 s link span exports as 1.5e6 µs.
    first_link = next(e for e in stamped if e["name"] == "n0.up")
    assert first_link["dur"] == pytest.approx(1.5e6)


def test_chrome_trace_tracks_are_named():
    doc = chrome_trace(make_trace())
    metadata = [e for e in doc["traceEvents"] if e["ph"] == "M"]
    process_names = {
        e["pid"]: e["args"]["name"]
        for e in metadata
        if e["name"] == "process_name"
    }
    thread_names = {
        (e["pid"], e["tid"]): e["args"]["name"]
        for e in metadata
        if e["name"] == "thread_name"
    }
    # Links live under the "network" process, one thread per link.
    assert "network" in process_names.values()
    assert "n0.up" in thread_names.values()
    assert "n1.up" in thread_names.values()
    # Every referenced (pid, tid) is named.
    for event in complete_events(doc):
        assert event["pid"] in process_names
        assert (event["pid"], event["tid"]) in thread_names


def test_span_log_lines_roundtrip():
    lines = list(span_log_lines(make_trace()))
    rows = [json.loads(line) for line in lines]
    spans = [row for row in rows if row["type"] == "span"]
    points = [row for row in rows if row["type"] == "point"]
    assert len(spans) == 3
    assert len(points) == 1
    assert spans[0]["meta"] == {"size": 100.0}
    assert points[0]["category"] == "retry"


def test_write_and_load_roundtrip(tmp_path):
    trace = make_trace()
    trace_path = tmp_path / "run.json"
    log_path = tmp_path / "spans.jsonl"
    write_chrome_trace(trace, str(trace_path))
    write_span_log(trace, str(log_path))
    events = load_trace_file(str(trace_path))
    assert len(events) == len(chrome_trace(trace)["traceEvents"])
    assert len(log_path.read_text().splitlines()) == 4
    # Bare-list files load too.
    bare = tmp_path / "bare.json"
    bare.write_text(json.dumps([e for e in events if e["ph"] == "X"]))
    assert all(e["ph"] == "X" for e in load_trace_file(str(bare)))


def test_summarize_trace():
    doc = chrome_trace(make_trace())
    text = summarize_trace(doc["traceEvents"], top=2)
    assert "3 spans" in text
    assert "link" in text
    assert "timeout" in text
    assert "longest 2 events" in text
    assert summarize_trace([]) == "empty trace (no events)"


def test_summarize_trace_counts_instant_events_per_category():
    """The delivery-protocol story (retransmits, stale drops, dedup
    absorptions) rides on instant events; the summary must tally them
    per category so `repro trace` surfaces the counters."""
    env = Environment()
    trace = Trace(env)
    trace.span("link", "n0.up", 0.0, 1.0)
    trace.point("integrity.retransmit", "push")
    trace.point("integrity.retransmit", "pull")
    trace.point("integrity.stale", "push")
    trace.point("drop", "push")
    doc = chrome_trace(trace)
    text = summarize_trace(doc["traceEvents"])
    assert "4 instant events" in text
    lines = {line.split()[0]: line.split()[-1] for line in text.splitlines() if line.startswith(("integrity.", "drop"))}
    assert lines["integrity.retransmit"] == "2"
    assert lines["integrity.stale"] == "1"
    assert lines["drop"] == "1"


def test_summarize_trace_tells_the_tuning_story():
    """Tuner activity rides on ``tuning.*`` instants; the summary must
    tally them and surface the *latest* name — for ``tuning.regret``
    that is the cumulative figure the drift experiment stamped last."""
    env = Environment()
    trace = Trace(env)
    trace.span("link", "n0.up", 0.0, 1.0)
    trace.point("tuning.reconfigure", "p=1e+06,c=4e+06")
    trace.point("tuning.reconfigure", "p=2e+06,c=4e+06")
    trace.point("tuning.change_point", "page-hinkley")
    trace.point("tuning.regret", "cum=1200 samples")
    trace.point("tuning.regret", "cum=15517 samples")
    text = summarize_trace(chrome_trace(trace)["traceEvents"])
    assert "tuning" in text
    rows = {
        line.split()[0]: line
        for line in text.splitlines()
        if line.startswith("tuning.")
    }
    assert "2" in rows["tuning.reconfigure"]
    assert rows["tuning.reconfigure"].endswith("p=2e+06,c=4e+06")
    assert rows["tuning.change_point"].endswith("page-hinkley")
    assert rows["tuning.regret"].endswith("cum=15517 samples")


def test_job_chrome_trace_includes_compute_tracks():
    cluster = ClusterSpec(machines=2, gpus_per_machine=1)
    job = TrainingJob(
        resolve_model("alexnet"),
        cluster,
        SchedulerSpec(kind="bytescheduler"),
        enable_trace=True,
    )
    job.run(measure=1, warmup=1)
    doc = job_chrome_trace(job)
    metadata = [e for e in doc["traceEvents"] if e["ph"] == "M"]
    processes = {
        e["args"]["name"] for e in metadata if e["name"] == "process_name"
    }
    threads = {
        e["args"]["name"] for e in metadata if e["name"] == "thread_name"
    }
    assert "compute" in processes
    assert "network" in processes
    assert "w0" in threads and "w1" in threads
    # Compute spans are present and well-formed.
    compute = [e for e in complete_events(doc) if e["cat"] == "compute"]
    assert compute
    timestamps = [e["ts"] for e in doc["traceEvents"] if e["ph"] != "M"]
    assert timestamps == sorted(timestamps)
