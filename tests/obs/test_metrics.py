"""Unit tests for the metrics instruments and registry."""

import json

import pytest

from repro.errors import ConfigError
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TimeWeighted,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def test_counter_monotonic():
    counter = Counter("c")
    counter.inc()
    counter.inc(2.5)
    assert counter.value == pytest.approx(3.5)
    with pytest.raises(ConfigError):
        counter.inc(-1.0)


def test_gauge_last_write_wins():
    gauge = Gauge("g")
    gauge.set(4.0)
    gauge.set(1.5)
    assert gauge.value == 1.5


def test_histogram_buckets_and_quantiles():
    histogram = Histogram("h", bounds=(1.0, 2.0, 4.0))
    for value in (0.5, 1.5, 1.7, 3.0, 100.0):
        histogram.observe(value)
    assert histogram.count == 5
    assert histogram.buckets == [1, 2, 1, 1]  # ≤1, ≤2, ≤4, overflow
    assert histogram.mean == pytest.approx((0.5 + 1.5 + 1.7 + 3.0 + 100.0) / 5)
    assert histogram.quantile(0.5) == 2.0  # bucket upper bound
    assert histogram.quantile(1.0) == 100.0  # overflow → observed max
    assert histogram.min == 0.5
    assert histogram.max == 100.0


def test_histogram_rejects_bad_bounds():
    with pytest.raises(ConfigError):
        Histogram("h", bounds=(2.0, 1.0))
    with pytest.raises(ConfigError):
        Histogram("h", bounds=())


def test_empty_histogram_serialises():
    data = Histogram("h").to_dict()
    assert data["count"] == 0
    assert data["min"] is None
    assert data["p50"] == 0.0


def test_time_weighted_integral_and_mean():
    clock = FakeClock()
    tw = TimeWeighted("tw", clock)
    tw.set(2.0)  # value 2 over [0, 3)
    clock.now = 3.0
    tw.set(4.0)  # value 4 over [3, 5)
    clock.now = 5.0
    assert tw.integral == pytest.approx(2.0 * 3 + 4.0 * 2)
    assert tw.mean() == pytest.approx(14.0 / 5)
    assert tw.peak == 4.0


def test_time_weighted_windowed_mean():
    clock = FakeClock()
    tw = TimeWeighted("tw", clock)
    tw.set(1.0)
    clock.now = 10.0
    mark = tw.mark()
    tw.set(3.0)
    clock.now = 14.0
    # Window [10, 14): value 3 throughout.
    assert tw.mean_since(mark) == pytest.approx(3.0)
    # Zero-length window falls back to the current value.
    assert tw.mean_since(tw.mark()) == 3.0


def test_registry_shares_instruments_by_name():
    registry = MetricsRegistry(clock=lambda: 0.0)
    assert registry.counter("x") is registry.counter("x")
    with pytest.raises(ConfigError):
        registry.gauge("x")  # same name, different kind


def test_registry_requires_clock_for_time_weighted():
    registry = MetricsRegistry()
    with pytest.raises(ConfigError):
        registry.time_weighted("tw")
    registry.bind_clock(lambda: 1.0)
    assert registry.time_weighted("tw") is not None


def test_registry_serialises_to_json(tmp_path):
    clock = FakeClock()
    registry = MetricsRegistry(clock=clock)
    registry.counter("hits").inc(3)
    registry.record_iteration({"iteration": 0, "duration": 0.5})
    path = tmp_path / "metrics.json"
    registry.write(str(path))
    data = json.loads(path.read_text())
    assert data["instruments"]["hits"]["value"] == 3
    assert data["iterations"] == [{"iteration": 0, "duration": 0.5}]
