"""Run reports and per-iteration metric sampling, end to end."""

import json

import pytest

from repro.faults import FaultPlan
from repro.obs import MetricsRegistry, RunReport
from repro.training import ClusterSpec, SchedulerSpec, run_experiment


def run_with_metrics(fault_plan=None, retry_timeout=None, **kwargs):
    metrics = MetricsRegistry()
    result = run_experiment(
        "resnet50",
        ClusterSpec(
            machines=2, gpus_per_machine=2, retry_timeout=retry_timeout
        ),
        SchedulerSpec(
            kind="bytescheduler", partition_bytes=4e6, credit_bytes=16e6
        ),
        measure=kwargs.pop("measure", 3),
        warmup=kwargs.pop("warmup", 1),
        fault_plan=fault_plan,
        metrics=metrics,
        **kwargs,
    )
    return metrics, result


def test_report_attached_and_consistent():
    metrics, result = run_with_metrics()
    report = result.report
    assert isinstance(report, RunReport)
    assert report.speed == pytest.approx(result.speed)
    assert report.model == "resnet50"
    assert report.scheduler == "bytescheduler"
    assert report.measured == 3
    assert report.scheduler_stats["bytes_started"] > 0
    assert report.scheduler_stats["tasks_enqueued"] > 0
    # PS fabric: per-link totals with a sane busy fraction.
    assert report.links
    for totals in report.links.values():
        assert 0.0 <= totals["busy_fraction"] <= 1.0
        assert totals["busy_time"] >= 0.0


def test_per_iteration_samples_cover_required_signals():
    metrics, result = run_with_metrics(
        fault_plan=FaultPlan.parse("blackout:w1.up@0.05-0.15"), retry_timeout=0.05
    )
    samples = metrics.iterations
    assert len(samples) == 4  # warmup + measured iterations
    for sample in samples:
        for key in (
            "iteration",
            "duration",
            "credit_occupancy",
            "queue_depth",
            "retries",
            "timeouts",
            "preemption_opportunities",
            "escape_starts",
            "link_busy_mean",
        ):
            assert key in sample, f"missing {key}"
        assert 0.0 <= sample["credit_occupancy"] <= 1.0
        assert sample["duration"] > 0.0
    assert [sample["iteration"] for sample in samples] == [0, 1, 2, 3]
    # The blackout window forces retries, which must show up in the samples
    # and in the report's robustness section.
    assert sum(sample["retries"] for sample in samples) > 0
    assert result.report.robustness["retries"] > 0
    assert result.report.iterations == samples


def test_metrics_instruments_wired_into_hot_paths():
    metrics, _result = run_with_metrics(
        fault_plan=FaultPlan.parse("blackout:w1.up@0.05-0.15"), retry_timeout=0.05
    )
    names = metrics.names()
    assert any(name.startswith("core.") and name.endswith("credit_used") for name in names)
    assert any(name.endswith("queue_depth") for name in names)
    assert "ps.transfer_latency" in names
    assert "ps.retries" in names
    latency = metrics["ps.transfer_latency"]
    assert latency.count > 0
    assert latency.mean > 0.0
    assert metrics["ps.retries"].value > 0


def test_report_round_trips_through_json(tmp_path):
    _metrics, result = run_with_metrics()
    path = tmp_path / "report.json"
    result.report.write(str(path))
    data = json.loads(path.read_text())
    assert data["schema"] == 3
    assert data["speed"] == pytest.approx(result.speed)
    assert data["iterations"] == result.report.iterations
    assert "scheduler_stats" in data and "links" in data
    # No tuner ran on this job: the section is present but empty.
    assert data["tuning"] == {}


def test_report_reads_schema_2_documents():
    """A schema-2 report (pre-``tuning``) still loads: the new field
    defaults to empty rather than being required."""
    legacy = {
        "label": "legacy",
        "model": "resnet50",
        "cluster": "2x2",
        "scheduler": "bytescheduler",
        "speed": 100.0,
        "sample_unit": "samples",
        "iteration_time": 0.1,
        "iteration_time_stdev": 0.0,
        "samples_per_iteration": 64.0,
        "warmup": 1,
        "measured": 3,
        "schema": 2,
    }
    report = RunReport(**legacy)
    assert report.tuning == {}
    assert report.schema == 2
    assert json.loads(report.to_json())["label"] == "legacy"


def test_report_without_metrics_registry():
    result = run_experiment(
        "alexnet",
        ClusterSpec(machines=2, gpus_per_machine=1),
        SchedulerSpec(kind="bytescheduler"),
        measure=2,
        warmup=1,
        report=True,
    )
    report = result.report
    assert isinstance(report, RunReport)
    assert report.iterations == []
    assert report.metrics == {}
    assert report.speed == pytest.approx(result.speed)
    assert "timeouts" in report.summary()


def test_allreduce_metrics():
    metrics = MetricsRegistry()
    run_experiment(
        "resnet50",
        ClusterSpec(machines=2, gpus_per_machine=1, arch="allreduce"),
        SchedulerSpec(kind="bytescheduler"),
        measure=2,
        warmup=1,
        metrics=metrics,
    )
    assert "allreduce.collective_latency" in metrics.names()
    assert metrics["allreduce.collective_latency"].count > 0
    assert len(metrics.iterations) == 3
