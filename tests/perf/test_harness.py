"""Perf harness: suite runner, BENCH file round-trip, regression gate."""

import pytest

from repro.perf import (
    BENCH_SCHEMA,
    MICROBENCHMARKS,
    bench_event_throughput,
    bench_scheduler_queue,
    compare,
    format_results,
    load_bench,
    run_suite,
    write_bench,
)


def fake_suite(values):
    return {
        "schema": BENCH_SCHEMA,
        "name": "micro",
        "python": "3.11.0",
        "results": {
            name: {"value": value, "unit": "ops/s", "wall_s": 0.1}
            for name, value in values.items()
        },
    }


def test_run_suite_keeps_best_of_n():
    calls = {"n": 0}

    def noisy():
        calls["n"] += 1
        return {"value": float(calls["n"]), "unit": "ops/s", "wall_s": 0.0}

    payload = run_suite({"noisy": noisy}, repeats=4)
    assert calls["n"] == 4
    result = payload["results"]["noisy"]
    assert result["value"] == 4.0  # best kept
    assert result["repeats"] == 4
    assert payload["schema"] == BENCH_SCHEMA


def test_run_suite_only_filter():
    ran = []

    def make(name):
        def bench():
            ran.append(name)
            return {"value": 1.0, "unit": "x", "wall_s": 0.0}

        return bench

    payload = run_suite(
        {"a": make("a"), "b": make("b")}, repeats=1, only=["b"]
    )
    assert ran == ["b"]
    assert list(payload["results"]) == ["b"]


def test_write_load_roundtrip(tmp_path):
    payload = fake_suite({"event_throughput": 1000.0})
    path = tmp_path / "BENCH_micro.json"
    write_bench(payload, path)
    assert load_bench(path) == payload


def test_load_rejects_wrong_schema(tmp_path):
    payload = fake_suite({"x": 1.0})
    payload["schema"] = BENCH_SCHEMA + 1
    path = tmp_path / "bad.json"
    write_bench(payload, path)
    with pytest.raises(ValueError):
        load_bench(path)


def test_compare_passes_within_threshold():
    baseline = fake_suite({"a": 100.0, "b": 50.0})
    current = fake_suite({"a": 80.0, "b": 60.0})  # -20% and +20%
    assert compare(current, baseline, threshold=0.25) == []


def test_compare_flags_regression_and_missing():
    baseline = fake_suite({"a": 100.0, "gone": 10.0})
    current = fake_suite({"a": 50.0, "new": 1.0})
    failures = compare(current, baseline, threshold=0.25)
    text = "\n".join(failures)
    assert "a:" in text and "50%" in text
    assert "gone: missing" in text
    assert "new: not in baseline" in text


def test_format_results_lists_each_benchmark():
    text = format_results(fake_suite({"a": 1234.5, "b": 2.0}))
    assert "a" in text and "1234.5" in text and "ops/s" in text


def test_microbenchmarks_registry_names():
    assert set(MICROBENCHMARKS) == {
        "event_throughput", "event_throughput_dense", "link_burst",
        "scheduler_queue", "end_to_end", "dear", "drift", "cluster",
        "claim_protocol",
    }


def test_event_throughput_bench_runs():
    result = bench_event_throughput(processes=10, steps=20)
    assert result["unit"] == "events/s"
    assert result["value"] > 0
    assert result["params"] == {"processes": 10, "steps": 20}


def test_scheduler_queue_bench_runs():
    result = bench_scheduler_queue(tasks=10, partitions=4)
    assert result["unit"] == "subtasks/s"
    assert result["value"] > 0


def test_cluster_bench_runs():
    from repro.perf import bench_cluster

    result = bench_cluster(jobs=20)
    assert result["unit"] == "jobs/s"
    assert result["value"] > 0
    assert result["params"]["jobs"] == 20
    assert 0.0 < result["params"]["fairness"] <= 1.0


def test_drift_bench_runs():
    from repro.perf import bench_drift

    result = bench_drift(segments=4)
    assert result["unit"] == "segments/s"
    assert result["value"] > 0
    assert result["params"]["profiled"] >= 4


def test_committed_baseline_is_loadable():
    """The CI gate depends on this file staying valid."""
    from pathlib import Path

    baseline_path = (
        Path(__file__).resolve().parents[2]
        / "benchmarks" / "perf" / "BASELINE.json"
    )
    baseline = load_bench(baseline_path)
    assert set(MICROBENCHMARKS) <= set(baseline["results"])
    for result in baseline["results"].values():
        assert result["value"] > 0


def test_dense_event_throughput_bench_runs():
    from repro.perf import bench_event_throughput_dense

    result = bench_event_throughput_dense(processes=50, steps=4)
    assert result["unit"] == "events/s"
    assert result["value"] > 0


def test_link_burst_bench_runs():
    from repro.perf import bench_link_burst

    result = bench_link_burst(messages=50, rounds=2)
    assert result["unit"] == "frames/s"
    assert result["value"] > 0


def test_claim_protocol_bench_runs():
    from repro.perf import bench_claim_protocol

    result = bench_claim_protocol(cycles=10)
    assert result["unit"] == "cycles/s"
    assert result["value"] > 0


def test_update_baseline_ratchets_only_real_gains(tmp_path):
    from repro.perf import update_baseline

    path = tmp_path / "BASELINE.json"
    # First write pins every benchmark outright.
    first = fake_suite({"a": 100.0, "b": 200.0})
    assert sorted(update_baseline(first, path)) == ["a", "b"]
    # Noise-level wiggle (< 5%) leaves the file untouched.
    before = path.read_text()
    assert update_baseline(fake_suite({"a": 104.0, "b": 195.0}), path) == []
    assert path.read_text() == before
    # A real improvement ratchets only its own entry; a new benchmark
    # is pinned at first sight.
    changed = update_baseline(
        fake_suite({"a": 120.0, "b": 195.0, "c": 7.0}), path
    )
    assert sorted(changed) == ["a", "c"]
    updated = load_bench(path)
    assert updated["results"]["a"]["value"] == 120.0
    assert updated["results"]["b"]["value"] == 200.0  # never lowered
    assert updated["results"]["c"]["value"] == 7.0
