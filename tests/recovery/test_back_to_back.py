"""Regression: overlapping crash-restart sequences must keep the
credit ledger balanced and converge to the fault-free digest.

Two root causes used to deadlock these plans:

* in-flight pushes to a dying server whose server-side chunk state had
  not formed yet were invisible to the keyed drain (orphan flights);
* a permanent server death forgot *durable* chunks (some worker had
  already pulled), but finished workers never re-push, so the replayed
  aggregation could never meet its barrier.

The fast cases pin both fixes; the slow matrix sweeps orderings.
"""

import pytest

from repro.experiments.common import setup_cluster
from repro.faults import FaultPlan
from repro.invariants import ChaosOracle
from repro.recovery import RecoverySpec
from repro.training import SchedulerSpec
from repro.training.job import TrainingJob
from repro.training.runner import resolve_model

SPEC = SchedulerSpec(
    kind="bytescheduler", partition_bytes=4e6, credit_bytes=16e6
)


def run_plan(plan_spec, model="resnet50", measure=4):
    cluster = setup_cluster("mxnet", "ps", "rdma", 2)
    oracle = ChaosOracle() if plan_spec else None
    job = TrainingJob(
        resolve_model(model),
        cluster,
        SPEC,
        fault_plan=FaultPlan.parse(plan_spec) if plan_spec else None,
        recovery_spec=RecoverySpec() if plan_spec else None,
        oracle=oracle,
    )
    job.run(measure=measure)
    return job, oracle


@pytest.fixture(scope="module")
def baseline_digest():
    job, _ = run_plan("")
    return job.backend.sync_digest()


def test_restart_during_drain_of_previous_crash(baseline_digest):
    """The second server crashes while the first's drain is still in
    flight; credits must be refunded exactly once."""
    job, oracle = run_plan("crash:s0@0.2+0.2;crash:s1@0.22+0.2")
    assert job.backend.sync_digest() == baseline_digest
    assert oracle.violations == 0
    for core in job._unique_cores():
        core.check_credit_invariant()


def test_permanent_crash_during_drain_migrates_durable_chunks(
    baseline_digest,
):
    """The second crash is permanent: its durable chunks (already
    pulled by some worker) must migrate to the remapped home instead of
    being re-aggregated — finished workers never re-push."""
    job, oracle = run_plan("crash:s0@0.2+0.2;crash:s1@0.22")
    assert job.backend.sync_digest() == baseline_digest
    assert oracle.violations == 0


@pytest.mark.slow
@pytest.mark.parametrize(
    "plan_spec",
    [
        "crash:s1@0.2+0.2;crash:s0@0.22",
        "crash:s0@0.2+0.05;crash:s1@0.21+0.05",
        "crash:s0@0.2;crash:w1@0.25+0.1",
        "crash:s0@0.2+0.2;crash:w0@0.3+0.1",
    ],
)
def test_back_to_back_crash_matrix(baseline_digest, plan_spec):
    job, oracle = run_plan(plan_spec)
    assert job.backend.sync_digest() == baseline_digest
    assert oracle.violations == 0
