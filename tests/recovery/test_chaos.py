"""Nightly chaos lane: property-based fault plans + randomized crashes.

Everything here is marked ``slow`` and excluded from the fast PR lane
(``pyproject.toml`` sets ``-m 'not slow'``); the nightly chaos workflow
runs it with ``-m slow``.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.faults import CrashFault, FaultPlan
from repro.training import ClusterSpec, SchedulerSpec, TrainingJob
from repro.training.runner import resolve_model

pytestmark = pytest.mark.slow

# Times as integer centiseconds so ``%g`` formatting round-trips exactly.
crash_times = st.integers(min_value=5, max_value=60).map(lambda n: n / 100)
restart_delays = st.one_of(
    st.none(), st.integers(min_value=5, max_value=40).map(lambda n: n / 100)
)


@given(
    node=st.sampled_from(["s0", "s1", "w0", "w1", "m3"]),
    time=crash_times,
    delay=restart_delays,
)
@settings(max_examples=80, deadline=None)
def test_crash_clause_grammar_round_trips(node, time, delay):
    clause = f"crash:{node}@{time:g}"
    if delay is not None:
        clause += f"+{delay:g}"
    plan = FaultPlan.parse(clause)
    assert plan.crashes == (CrashFault(node, time, delay),)
    # The parsed plan regenerates an equivalent spec.
    crash = plan.crashes[0]
    rebuilt = f"crash:{crash.node}@{crash.time:g}"
    if crash.restarts:
        rebuilt += f"+{crash.restart_delay:g}"
    assert FaultPlan.parse(rebuilt) == plan
    assert f"crash {node}" in plan.describe()


@given(
    node=st.sampled_from(["s0", "w1"]),
    time=crash_times,
    delay=restart_delays,
)
@settings(max_examples=40, deadline=None)
def test_duplicate_crash_nodes_always_rejected(node, time, delay):
    plan_spec = f"crash:{node}@{time:g};crash:{node}@{time + 1:g}"
    if delay is not None:
        plan_spec += f"+{delay:g}"
    with pytest.raises(ConfigError, match="crashes more than once"):
        FaultPlan.parse(plan_spec)


@given(time=st.floats(max_value=-1e-6, allow_nan=False))
@settings(max_examples=20, deadline=None)
def test_negative_crash_times_always_rejected(time):
    with pytest.raises(ConfigError, match="crash time"):
        CrashFault("s0", time)


@pytest.mark.parametrize("seed", range(6))
def test_randomized_crash_matrix_smoke(seed):
    """Seeded random crashes across node kinds: every run must complete
    without deadlock and with the credit ledger intact."""
    rng = random.Random(seed)
    arch = rng.choice(["ps", "allreduce"])
    machines = rng.choice([2, 3])
    nodes = (
        [f"m{i}" for i in range(machines)]
        if arch == "allreduce"
        else [f"w{i}" for i in range(machines)]
        + [f"s{i}" for i in range(machines)]
    )
    node = rng.choice(nodes)
    time = round(rng.uniform(0.1, 0.5), 3)
    restarts = machines == 2 or rng.random() < 0.5
    clause = f"crash:{node}@{time:g}"
    if restarts:
        clause += f"+{round(rng.uniform(0.05, 0.3), 3):g}"

    job = TrainingJob(
        resolve_model("resnet50"),
        ClusterSpec(machines=machines, gpus_per_machine=1, arch=arch),
        SchedulerSpec(
            kind="bytescheduler", partition_bytes=8e6, credit_bytes=32e6
        ),
        fault_plan=FaultPlan.parse(clause),
    )
    result = job.run(measure=4)
    assert result.speed > 0
    seen = set()
    for core in job.cores.values():
        if id(core) in seen:
            continue
        seen.add(id(core))
        core.check_credit_invariant()
    stats = job.recovery.stats()
    assert stats["crashes"] == 1
    assert stats["detected"] == 1
