"""FailureDetector: deterministic heartbeat detection."""

import math

import pytest

from repro.errors import ConfigError
from repro.recovery import FailureDetector, NodeLiveness
from repro.sim import Environment


def _watched(crash_start, crash_end, probe_interval=0.005, miss_threshold=2):
    env = Environment()
    liveness = NodeLiveness(env)
    liveness.add_window("s0", crash_start, crash_end)
    detector = FailureDetector(
        env,
        liveness,
        probe_interval=probe_interval,
        miss_threshold=miss_threshold,
    )
    events = []
    detector.watch(
        "s0",
        on_death=lambda node, now: events.append(("dead", node, now)),
        on_recovery=lambda node, now: events.append(("up", node, now)),
    )
    return env, detector, events


def test_detection_lag_is_deterministic():
    # Crash at 0.2; probes land at 0.005 multiples.  The probes at
    # 0.200 and 0.205 both go unanswered, so with miss_threshold=2 the
    # death is declared at exactly 0.205.
    env, detector, events = _watched(0.2, 0.5)
    env.run()
    assert ("dead", "s0", pytest.approx(0.205)) in events
    assert detector.detections == 1
    assert detector.detection_lag() == pytest.approx(0.01)


def test_recovery_observed_at_first_answered_probe():
    env, detector, events = _watched(0.2, 0.3)
    env.run()
    kinds = [event[0] for event in events]
    assert kinds == ["dead", "up"]
    # Restart at 0.3: the 0.300 probe is answered (half-open window).
    assert events[1][2] == pytest.approx(0.3)
    assert detector.recoveries_observed == 1


def test_probe_chain_retires_and_simulation_terminates():
    # env.run() with no horizon only returns if the probe chain stops
    # scheduling events once the lifecycle resolves.
    env, detector, events = _watched(0.1, 0.15)
    env.run()
    assert env.now < 1.0
    finite_probes = detector.probes_sent
    assert finite_probes < 100


def test_permanent_crash_stops_probing_after_declaration():
    env, detector, events = _watched(0.1, math.inf)
    env.run()
    assert [event[0] for event in events] == ["dead"]
    assert detector.recoveries_observed == 0


def test_validation_errors():
    env = Environment()
    liveness = NodeLiveness(env)
    with pytest.raises(ConfigError, match="probe_interval"):
        FailureDetector(env, liveness, probe_interval=0.0)
    with pytest.raises(ConfigError, match="miss_threshold"):
        FailureDetector(env, liveness, miss_threshold=0)
    detector = FailureDetector(env, liveness)
    with pytest.raises(ConfigError, match="no crash window"):
        detector.watch("ghost", on_death=lambda node, now: None)


# -- open-ended watches (elastic membership) --------------------------------


def test_watch_without_crash_window_needs_open_ended():
    env = Environment()
    liveness = NodeLiveness(env)
    detector = FailureDetector(env, liveness)
    with pytest.raises(ConfigError, match="open_ended"):
        detector.watch("joiner", on_death=lambda node, now: None)


def test_open_ended_watch_probes_and_cancel_keeps_heap_finite():
    env = Environment()
    liveness = NodeLiveness(env)
    detector = FailureDetector(env, liveness, probe_interval=0.01)
    cancel = detector.watch(
        "joiner", on_death=lambda node, now: None, open_ended=True
    )
    # Without the cancel the chain would re-arm forever; cancelling
    # from inside the simulation lets env.run() drain and return.
    env.timeout(0.1).callbacks.append(lambda _evt: cancel())
    env.run()
    assert env.now < 1.0
    assert 0 < detector.probes_sent <= 12


def test_open_ended_watch_survives_lifecycle_resolution():
    # A plain watch retires after the crash window resolves; an
    # open-ended one keeps probing until cancelled.
    env = Environment()
    liveness = NodeLiveness(env)
    liveness.add_window("s0", 0.02, 0.04)
    detector = FailureDetector(
        env, liveness, probe_interval=0.01, miss_threshold=1
    )
    events = []
    cancel = detector.watch(
        "s0",
        on_death=lambda node, now: events.append(("dead", now)),
        on_recovery=lambda node, now: events.append(("up", now)),
        open_ended=True,
    )
    env.timeout(0.2).callbacks.append(lambda _evt: cancel())
    env.run()
    assert [kind for kind, _now in events] == ["dead", "up"]
    # Probes continued past the recovery (at 0.04) until the cancel.
    assert detector.probes_sent >= 15
