"""Crash recovery is deterministic (satellite of the robustness PR).

The same crash plan run twice must produce byte-identical traces and
identical machine-readable run reports — recovery choreography adds no
hidden nondeterminism (unordered dict walks, id()-keyed iteration,
wall-clock reads).
"""

import pytest

from repro.faults import FaultPlan
from repro.obs import MetricsRegistry, build_run_report
from repro.training import ClusterSpec, SchedulerSpec, TrainingJob
from repro.training.runner import resolve_model

PLANS = [
    "crash:s0@0.2+0.1",     # server crash + restart
    "crash:w1@0.15+0.1",    # worker crash + restart
    "crash:s0@0.25",        # permanent server crash (remap)
]


def _crashed_run(plan_spec):
    """One traced, metered crashed run → (spans, points, report)."""
    job = TrainingJob(
        resolve_model("resnet50"),
        ClusterSpec(machines=2, gpus_per_machine=1),
        SchedulerSpec(
            kind="bytescheduler", partition_bytes=8e6, credit_bytes=32e6
        ),
        fault_plan=FaultPlan.parse(plan_spec),
        enable_trace=True,
        metrics=MetricsRegistry(),
    )
    result = job.run(measure=3)
    return job.trace.spans, job.trace.points, build_run_report(job, result)


@pytest.mark.parametrize("plan_spec", PLANS)
def test_same_crash_plan_twice_is_byte_identical(plan_spec):
    spans_a, points_a, report_a = _crashed_run(plan_spec)
    spans_b, points_b, report_b = _crashed_run(plan_spec)
    assert points_a == points_b
    assert spans_a == spans_b
    # Byte-identical, not merely approximately equal.
    assert repr(spans_a) == repr(spans_b)
    assert report_a.to_json() == report_b.to_json()


def test_crash_trace_records_the_full_lifecycle():
    spans, points, report = _crashed_run("crash:s0@0.2+0.1")
    kinds = {(category, name) for _t, category, name in points}
    assert ("crash", "s0") in kinds
    assert ("restart", "s0") in kinds
    assert ("detector.dead", "s0") in kinds
    assert ("detector.recovered", "s0") in kinds
    recovery_spans = [span for span in spans if span.category == "recovery"]
    assert len(recovery_spans) == 1
    assert report.recovery["recoveries"] == 1
