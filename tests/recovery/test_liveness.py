"""NodeLiveness: the ground-truth up/down oracle."""

import math

import pytest

from repro.errors import ConfigError
from repro.recovery import NodeLiveness
from repro.sim import Environment


def test_window_arithmetic_is_half_open():
    env = Environment()
    liveness = NodeLiveness(env)
    liveness.add_window("s0", 1.0, 2.0)
    checks = []
    for t in (0.5, 1.0, 1.5, 2.0, 3.0):
        env.timeout(t).callbacks.append(
            lambda _evt, n=t: checks.append((n, liveness.is_up("s0")))
        )
    env.run()
    assert checks == [
        (0.5, True),
        (1.0, False),   # down from the crash instant...
        (1.5, False),
        (2.0, True),    # ...up again at the restart instant
        (3.0, True),
    ]


def test_unwatched_nodes_are_always_up():
    liveness = NodeLiveness(Environment())
    assert liveness.is_up("anything")
    assert liveness.down_window("anything") is None
    assert not liveness.is_permanent("anything")


def test_permanent_crash_never_recovers():
    env = Environment()
    liveness = NodeLiveness(env)
    liveness.add_window("w0", 0.5, math.inf)
    assert liveness.is_permanent("w0")
    seen = []
    env.timeout(1000.0).callbacks.append(
        lambda _evt: seen.append(liveness.is_up("w0"))
    )
    env.run()
    assert seen == [False]


def test_duplicate_and_empty_windows_rejected():
    liveness = NodeLiveness(Environment())
    liveness.add_window("s0", 0.1, 0.2)
    with pytest.raises(ConfigError, match="already has a crash window"):
        liveness.add_window("s0", 0.5, 0.6)
    with pytest.raises(ConfigError, match="empty"):
        liveness.add_window("s1", 0.5, 0.5)


def test_watched_is_sorted():
    liveness = NodeLiveness(Environment())
    liveness.add_window("w3", 0.1, 0.2)
    liveness.add_window("s0", 0.3, 0.4)
    assert liveness.watched == ("s0", "w3")
