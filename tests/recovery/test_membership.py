"""Elastic membership: planned join/leave scale events.

The acceptance bar mirrors crash recovery: a run whose worker set
changes mid-training must stay live (park, never deadlock), converge
to the same final parameter state as the fault-free run, keep the
scheduler's credit ledger balanced, and bump the membership epoch
exactly once per applied event.
"""

import pytest

from repro.errors import ConfigError
from repro.faults import FaultPlan
from repro.invariants import ChaosOracle
from repro.models import custom_model
from repro.recovery import MembershipManager, MembershipSpec
from repro.training import ClusterSpec, SchedulerSpec, TrainingJob
from repro.training.runner import resolve_model
from repro.units import MB


def small_model():
    return custom_model(
        layer_bytes=[8 * MB, 24 * MB, 4 * MB],
        fp_times=[0.002] * 3,
        bp_times=[0.004] * 3,
        batch_size=16,
    )


def make_job(
    plan_spec,
    arch="ps",
    machines=4,
    seed=0,
    min_workers=1,
    oracle=True,
    **job_kwargs,
):
    cluster = ClusterSpec(
        machines=machines, gpus_per_machine=1, arch=arch, seed=seed
    )
    plan = (
        FaultPlan.parse(f"{plan_spec};seed:{seed}") if plan_spec else None
    )
    return TrainingJob(
        small_model(),
        cluster,
        SchedulerSpec(
            kind="bytescheduler", partition_bytes=8e6, credit_bytes=32e6
        ),
        fault_plan=plan,
        membership_spec=MembershipSpec(min_workers=min_workers),
        oracle=ChaosOracle() if oracle else None,
        **job_kwargs,
    )


# -- spec validation --------------------------------------------------------


def test_membership_spec_rejects_bad_floor():
    with pytest.raises(ConfigError):
        MembershipSpec(min_workers=0)


def test_install_rejects_unknown_node():
    with pytest.raises(ConfigError, match="unknown worker"):
        make_job("leave:nope@0.1")


# -- PS leave + rejoin ------------------------------------------------------


def test_ps_leave_and_rejoin_completes_and_bumps_epoch():
    job = make_job("leave:w1@0.05;join:w1@0.15")
    result = job.run(measure=6, warmup=2)
    assert result.measured == 6
    stats = job.membership.stats()
    assert stats["epoch"] == 2
    assert stats["joins"] == 1
    assert stats["leaves"] == 1
    assert len(job.membership.active_members) == 4
    # Leave drained the worker's in-flight credit back to its core.
    for core in job._unique_cores():
        core.check_credit_invariant()


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_leave_rejoin_digest_matches_crash_restart_and_fault_free(seed):
    baseline = make_job(None, seed=seed, oracle=False)
    baseline.run(measure=4, warmup=2)
    digest = baseline.backend.sync_digest()

    elastic = make_job("leave:w1@0.05;join:w1@0.15", seed=seed)
    elastic.run(measure=4, warmup=2)
    assert elastic.backend.sync_digest() == digest

    cluster = ClusterSpec(machines=4, gpus_per_machine=1, arch="ps", seed=seed)
    crashed = TrainingJob(
        small_model(),
        cluster,
        SchedulerSpec(
            kind="bytescheduler", partition_bytes=8e6, credit_bytes=32e6
        ),
        fault_plan=FaultPlan.parse(f"crash:w1@0.05+0.1;seed:{seed}"),
    )
    crashed.run(measure=4, warmup=2)
    assert crashed.backend.sync_digest() == digest


def test_ps_leave_refunds_credit_and_resizes_barriers():
    job = make_job("leave:w1@0.05")
    job.run(measure=4, warmup=1)
    stats = job.membership.stats()
    assert stats["leaves"] == 1
    assert stats["credit_refunded_bytes"] > 0.0
    assert len(job.membership.active_members) == 3
    # Iterations built after the leave run three-wide.
    built = job._built_iterations
    assert job._iteration_members[built - 1] == 3


# -- collective (ring) scale events ----------------------------------------


def test_allreduce_leave_and_rejoin_reforms_ring():
    job = make_job("leave:m1@0.05;join:m1@0.1", arch="allreduce")
    result = job.run(measure=6, warmup=2)
    assert result.measured == 6
    assert job.membership.epoch == 2
    assert job.backend.live_machines == 4


def test_allreduce_scale_out_from_absent_improves_speed():
    spec = "join:m2@0.08;join:m3@0.08"
    job = make_job(spec, arch="allreduce", machines=4)
    # m2/m3 are initially absent (their first event is a join).
    job.run(measure=10, warmup=2)
    built = job._built_iterations
    pre = job.segment_speed(1, 3)
    post = job.segment_speed(built - 2, built)
    assert post > pre
    assert job.membership.epoch == 2


def test_ps_scale_out_from_absent_improves_speed():
    spec = "join:w2@0.15;join:w3@0.15"
    job = make_job(spec, machines=4)
    job.run(measure=10, warmup=2)
    built = job._built_iterations
    assert job.segment_speed(built - 2, built) > job.segment_speed(1, 3)


# -- parking ----------------------------------------------------------------


def test_below_floor_parks_instead_of_deadlocking():
    job = make_job("leave:w1@0.05;leave:w2@0.08;leave:w3@0.11",
                   min_workers=2)
    with pytest.raises(ConfigError, match="parked"):
        job.run(measure=8, warmup=4)
    assert job.membership.stats()["park_events"] > 0


def test_pending_join_unparks_the_job():
    job = make_job(
        "leave:w1@0.05;leave:w2@0.08;leave:w3@0.11;join:w1@0.4",
        min_workers=2,
    )
    result = job.run(measure=6, warmup=2)
    assert result.measured == 6
    stats = job.membership.stats()
    assert stats["park_events"] >= 1
    assert stats["parked_time"] > 0.0
    assert len(job.membership.active_members) == 2


# -- fencing and validation -------------------------------------------------


def test_epoch_history_is_sequential_and_quiesced():
    job = make_job("leave:w1@0.04;join:w1@0.1;leave:w2@0.16")
    job.run(measure=6, warmup=2)
    stats = job.membership.stats()
    history = stats["history"]
    assert [record["epoch"] for record in history] == [1, 2, 3]
    for record in history:
        assert record["applied"] >= record["scheduled"]
    # Member-count timeline tracks the events.
    counts = [count for _t, count in stats["member_counts"]]
    assert counts[0] == 4 and counts[-1] == 3


def test_double_leave_is_rejected_at_parse_time():
    from repro.errors import FaultPlanError

    with pytest.raises(FaultPlanError, match="alternate"):
        FaultPlan.parse("leave:w1@0.05;leave:w1@0.15")


def test_plan_rejects_crash_and_scale_on_same_node():
    with pytest.raises(ConfigError):
        FaultPlan.parse("crash:w1@0.1+0.1;leave:w1@0.3")


# -- determinism and chaos --------------------------------------------------


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_storm_is_deterministic_and_oracle_clean(seed):
    spec = (
        "leave:w1@0.04;join:w1@0.12;leave:w2@0.2;join:w2@0.3;"
        "corrupt:w0.up@0-0.4%0.05;dup:w3.up@0-0.4%0.05;"
        "reorder:w0.down@0-0.4%0.1"
    )
    digests = []
    for _repeat in range(2):
        job = make_job(spec, seed=seed, integrity=True)
        job.run(measure=6, warmup=2)
        assert job.oracle.violations == 0
        digests.append(tuple(job.backend.sync_digest()))
    assert digests[0] == digests[1]

    clean = make_job(None, seed=seed, oracle=False)
    clean.run(measure=6, warmup=2)
    assert digests[0] == tuple(clean.backend.sync_digest())


# -- observability ----------------------------------------------------------


def test_membership_lands_in_the_run_report():
    from repro.obs import build_run_report

    job = make_job("leave:w1@0.05;join:w1@0.15")
    result = job.run(measure=6, warmup=2)
    report = build_run_report(job, result)
    assert report.membership["epoch"] == 2
    assert report.membership["joins"] == 1
    assert len(report.membership["history"]) == 2
    assert report.membership["member_counts"]
    # Round-trips through JSON.
    assert "membership" in report.to_dict()


def test_membership_events_appear_in_trace():
    job = make_job("leave:w1@0.05;join:w1@0.15", enable_trace=True)
    job.run(measure=6, warmup=2)
    categories = {span.category for span in job.trace.spans}
    points = {category for _t, category, _name in job.trace.points}
    assert "membership.leave" in points
    assert "membership.join" in points
    assert "membership.quiesce" in categories
    assert "membership.sync" in categories
