"""End-to-end crash recovery on built training jobs.

The acceptance bar for the whole subsystem: a run that loses a node
mid-training must converge to the *same final parameter state* as the
fault-free run, with the recovery cost visible in the stats.
"""

import pytest

from repro.errors import ConfigError
from repro.faults import FaultPlan
from repro.recovery import RecoverySpec
from repro.training import ClusterSpec, SchedulerSpec, TrainingJob
from repro.training.runner import resolve_model


def make_job(arch="ps", fault_plan=None, machines=2, **job_kwargs):
    cluster = ClusterSpec(machines=machines, gpus_per_machine=1, arch=arch)
    return TrainingJob(
        resolve_model("resnet50"),
        cluster,
        SchedulerSpec(
            kind="bytescheduler", partition_bytes=8e6, credit_bytes=32e6
        ),
        fault_plan=fault_plan,
        **job_kwargs,
    )


def unique_cores(job):
    seen = {}
    for core in job.cores.values():
        seen[id(core)] = core
    return list(seen.values())


def test_server_crash_and_restart_converges_to_fault_free_digest():
    baseline = make_job()
    baseline.run(measure=4)
    digest = baseline.backend.sync_digest()

    job = make_job(fault_plan=FaultPlan.parse("crash:s0@0.4+0.2"))
    job.run(measure=4)

    assert job.backend.sync_digest() == digest
    stats = job.recovery.stats()
    assert stats["crashes"] == 1
    assert stats["detected"] == 1
    assert stats["recoveries"] == 1
    assert stats["recovery_time_total"] > 0.0
    assert stats["replayed_subtasks"] > 0
    assert stats["resync_bytes"] > 0.0
    for core in unique_cores(job):
        core.check_credit_invariant()
        assert core.drained_subtasks == core.requeued_subtasks


def test_recovery_lands_in_the_run_report():
    from repro.obs import MetricsRegistry, build_run_report

    job = make_job(
        fault_plan=FaultPlan.parse("crash:s0@0.4+0.2"),
        metrics=MetricsRegistry(),
    )
    result = job.run(measure=4)
    report = build_run_report(job, result)
    assert report.recovery["crashes"] == 1
    assert report.recovery["recovery_time_total"] > 0.0
    assert report.scheduler_stats["drained_subtasks"] > 0
    assert report.scheduler_stats["requeued_subtasks"] > 0
    assert report.scheduler_stats["credit_refunded"] > 0.0


def test_checkpoint_interval_bounds_resync_volume():
    def resync_bytes(interval):
        job = make_job(
            fault_plan=FaultPlan.parse("crash:s0@0.4+0.1"),
            recovery_spec=RecoverySpec(checkpoint_interval=interval),
        )
        job.run(measure=4)
        return job.recovery.stats()["resync_bytes"]

    # Frequent snapshots leave fewer bytes to refetch after a restart.
    assert resync_bytes(0.05) < resync_bytes(0.4)


def test_server_permanent_crash_remaps_and_still_converges():
    baseline = make_job()
    baseline.run(measure=4)
    digest = baseline.backend.sync_digest()

    job = make_job(fault_plan=FaultPlan.parse("crash:s0@0.4"))
    job.run(measure=4)
    assert job.backend.sync_digest() == digest
    stats = job.recovery.stats()
    assert stats["permanent_failures"] == 1
    assert stats["recoveries"] == 0
    for core in unique_cores(job):
        core.check_credit_invariant()


def test_worker_crash_and_restart_completes_every_iteration():
    job = make_job(fault_plan=FaultPlan.parse("crash:w1@0.3+0.2"))
    result = job.run(measure=4)
    assert set(result.markers) == {"w0", "w1"}
    stats = job.recovery.stats()
    assert stats["recoveries"] == 1
    for core in unique_cores(job):
        core.check_credit_invariant()


def test_worker_permanent_crash_degrades_gracefully():
    job = make_job(machines=3, fault_plan=FaultPlan.parse("crash:w2@0.3"))
    result = job.run(measure=4)
    # The survivors finish; the dead worker is excluded, not deadlocked.
    assert set(result.markers) == {"w0", "w1"}
    assert job.recovery.stats()["permanent_failures"] == 1


def test_allreduce_machine_crash_and_restart_slows_but_completes():
    healthy = make_job(arch="allreduce").run(measure=4)
    job = make_job(
        arch="allreduce", fault_plan=FaultPlan.parse("crash:m0@0.3+0.2")
    )
    crashed = job.run(measure=4)
    assert set(crashed.markers) == {"m0", "m1"}
    # The ring stalls for the down window, so the run cannot be faster.
    assert crashed.speed < healthy.speed


def test_allreduce_permanent_crash_reforms_the_ring():
    job = make_job(
        arch="allreduce", machines=3, fault_plan=FaultPlan.parse("crash:m2@0.3")
    )
    result = job.run(measure=4)
    assert set(result.markers) == {"m0", "m1"}
    assert job.recovery.stats()["permanent_failures"] == 1


def test_unknown_crash_node_rejected():
    with pytest.raises(ConfigError, match="unknown node"):
        make_job(fault_plan=FaultPlan.parse("crash:nope@0.1+0.1"))


def test_permanent_worker_crash_needs_survivors():
    # machines=2 has two workers, so killing both's worth is the 1-worker
    # cluster case: build one worker via allreduce machine check instead.
    with pytest.raises(ConfigError, match=">= 2 machines"):
        make_job(
            arch="allreduce",
            machines=1,
            fault_plan=FaultPlan.parse("crash:m0@0.1"),
        )
