"""Unit tests for the discrete-event kernel (Environment/Event/Process)."""

import pytest

from repro.errors import Interrupt, SimulationError
from repro.sim import Environment


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_clock_custom_initial_time():
    env = Environment(initial_time=12.5)
    assert env.now == 12.5


def test_timeout_advances_clock():
    env = Environment()

    def proc(env):
        yield env.timeout(3.0)
        return env.now

    process = env.process(proc(env))
    env.run()
    assert process.value == 3.0
    assert env.now == 3.0


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1.0)


def test_timeout_carries_value():
    env = Environment()

    def proc(env):
        got = yield env.timeout(1.0, value="payload")
        return got

    process = env.process(proc(env))
    env.run()
    assert process.value == "payload"


def test_sequential_timeouts_accumulate():
    env = Environment()
    times = []

    def proc(env):
        for delay in (1.0, 2.0, 0.5):
            yield env.timeout(delay)
            times.append(env.now)

    env.process(proc(env))
    env.run()
    assert times == [1.0, 3.0, 3.5]


def test_same_time_events_fire_fifo():
    env = Environment()
    order = []

    def proc(env, tag):
        yield env.timeout(1.0)
        order.append(tag)

    for tag in ("a", "b", "c"):
        env.process(proc(env, tag))
    env.run()
    assert order == ["a", "b", "c"]


def test_event_succeed_wakes_waiter():
    env = Environment()
    gate = env.event()
    log = []

    def waiter(env):
        value = yield gate
        log.append((env.now, value))

    def opener(env):
        yield env.timeout(5.0)
        gate.succeed("open")

    env.process(waiter(env))
    env.process(opener(env))
    env.run()
    assert log == [(5.0, "open")]


def test_event_cannot_trigger_twice():
    env = Environment()
    gate = env.event()
    gate.succeed(1)
    with pytest.raises(SimulationError):
        gate.succeed(2)


def test_event_fail_raises_in_waiter():
    env = Environment()
    gate = env.event()
    caught = []

    def waiter(env):
        try:
            yield gate
        except ValueError as exc:
            caught.append(str(exc))

    env.process(waiter(env))
    gate.fail(ValueError("boom"))
    env.run()
    assert caught == ["boom"]


def test_unhandled_event_failure_surfaces():
    env = Environment()
    gate = env.event()
    gate.fail(RuntimeError("nobody catches this"))
    with pytest.raises(RuntimeError, match="nobody catches this"):
        env.run()


def test_fail_requires_exception():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")


def test_process_return_value():
    env = Environment()

    def proc(env):
        yield env.timeout(1.0)
        return 42

    process = env.process(proc(env))
    env.run()
    assert process.ok
    assert process.value == 42


def test_process_exception_propagates_to_waiter():
    env = Environment()

    def failing(env):
        yield env.timeout(1.0)
        raise KeyError("inner")

    def outer(env):
        try:
            yield env.process(failing(env))
        except KeyError:
            return "handled"

    process = env.process(outer(env))
    env.run()
    assert process.value == "handled"


def test_process_unhandled_exception_surfaces():
    env = Environment()

    def failing(env):
        yield env.timeout(1.0)
        raise KeyError("unhandled")

    env.process(failing(env))
    with pytest.raises(KeyError):
        env.run()


def test_yield_non_event_is_error():
    env = Environment()

    def bad(env):
        yield 17

    env.process(bad(env))
    with pytest.raises(SimulationError, match="non-event"):
        env.run()


def test_yield_foreign_event_is_error():
    env_a = Environment()
    env_b = Environment()

    def bad(env):
        yield env_b.event().succeed()

    env_a.process(bad(env_a))
    env_b.run()
    with pytest.raises(SimulationError, match="another environment"):
        env_a.run()


def test_process_waits_on_another_process():
    env = Environment()

    def child(env):
        yield env.timeout(2.0)
        return "child-done"

    def parent(env):
        value = yield env.process(child(env))
        return (env.now, value)

    process = env.process(parent(env))
    env.run()
    assert process.value == (2.0, "child-done")


def test_yield_already_processed_event_continues_immediately():
    env = Environment()
    gate = env.event()
    gate.succeed("early")

    def late(env):
        yield env.timeout(1.0)
        value = yield gate
        return (env.now, value)

    process = env.process(late(env))
    env.run()
    assert process.value == (1.0, "early")


def test_run_until_stops_clock():
    env = Environment()

    def proc(env):
        yield env.timeout(100.0)

    env.process(proc(env))
    env.run(until=10.0)
    assert env.now == 10.0


def test_run_until_past_raises():
    env = Environment(initial_time=5.0)
    with pytest.raises(SimulationError):
        env.run(until=1.0)


def test_step_empty_queue_raises():
    env = Environment()
    with pytest.raises(SimulationError):
        env.step()


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(7.0)
    assert env.peek() == 7.0


def test_peek_empty_is_inf():
    env = Environment()
    assert env.peek() == float("inf")


def test_interrupt_raises_in_process():
    env = Environment()
    log = []

    def victim(env):
        try:
            yield env.timeout(100.0)
        except Interrupt as interrupt:
            log.append((env.now, interrupt.cause))

    def attacker(env, victim_proc):
        yield env.timeout(3.0)
        victim_proc.interrupt("stop it")

    victim_proc = env.process(victim(env))
    env.process(attacker(env, victim_proc))
    env.run()
    assert log == [(3.0, "stop it")]


def test_interrupt_dead_process_raises():
    env = Environment()

    def quick(env):
        yield env.timeout(1.0)

    process = env.process(quick(env))
    env.run()
    with pytest.raises(SimulationError):
        process.interrupt()


def test_active_process_visible_during_resume():
    env = Environment()
    seen = []

    def proc(env):
        seen.append(env.active_process)
        yield env.timeout(1.0)

    process = env.process(proc(env))
    env.run()
    assert seen == [process]
    assert env.active_process is None


def test_event_value_before_trigger_raises():
    env = Environment()
    with pytest.raises(SimulationError):
        _ = env.event().value


def test_event_ok_before_trigger_raises():
    env = Environment()
    with pytest.raises(SimulationError):
        _ = env.event().ok


def test_process_requires_generator():
    env = Environment()
    with pytest.raises(SimulationError):
        env.process(lambda: None)


def test_interrupt_ignores_stale_target_firing():
    """A target abandoned by an interrupt must not resume the process.

    Regression test: interrupt used to leave the abandoned event's
    callback armed (the removal targeted a never-set ``_target``), so
    when the old event eventually fired it re-entered the generator at
    the wrong yield.
    """
    env = Environment()
    log = []

    def victim(env):
        try:
            yield env.timeout(10.0)
            log.append("long-completed")
        except Interrupt:
            log.append(("interrupted", env.now))
        # If the stale timeout(10) resumes us, these two short waits
        # would be skipped past and the log order would break.
        yield env.timeout(1.0)
        log.append(("step", env.now))
        yield env.timeout(20.0)
        log.append(("done", env.now))

    process = env.process(victim(env))

    def interrupter(env):
        yield env.timeout(2.0)
        process.interrupt("stop")

    env.process(interrupter(env))
    env.run()
    assert log == [("interrupted", 2.0), ("step", 3.0), ("done", 23.0)]
    assert process.ok


def test_interrupt_stale_success_is_ignored_without_misresume():
    """The abandoned target firing with a value is silently dropped."""
    env = Environment()

    def victim(env):
        stale = env.timeout(5.0, value="stale")
        try:
            yield stale
        except Interrupt:
            pass
        got = yield env.timeout(10.0, value="fresh")
        return (env.now, got, stale.value)

    process = env.process(victim(env))

    def interrupter(env):
        yield env.timeout(1.0)
        process.interrupt()

    env.process(interrupter(env))
    env.run()
    assert process.value == (11.0, "fresh", "stale")


def test_double_interrupt_retargets_to_latest():
    env = Environment()
    causes = []

    def victim(env):
        for _ in range(2):
            try:
                yield env.timeout(100.0)
            except Interrupt as interrupt:
                causes.append(interrupt.cause)
        yield env.timeout(1.0)
        return env.now

    process = env.process(victim(env))

    def interrupter(env):
        yield env.timeout(1.0)
        process.interrupt("first")
        yield env.timeout(1.0)
        process.interrupt("second")

    env.process(interrupter(env))
    env.run()
    assert causes == ["first", "second"]
    assert process.value == 3.0


def test_defer_runs_callback_in_order():
    env = Environment()
    log = []

    env.defer(log.append, "deferred")

    def proc(env):
        log.append("process")
        yield env.timeout(1.0)

    env.process(proc(env))
    env.run()
    assert log == ["deferred", "process"]


def test_defer_with_delay_and_priority():
    env = Environment()
    log = []

    env.defer(lambda _: log.append(("late", env.now)), delay=2.0)
    env.defer(lambda _: log.append(("early", env.now)), delay=1.0)
    env.run()
    assert log == [("early", 1.0), ("late", 2.0)]
