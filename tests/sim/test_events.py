"""Unit tests for composite condition events (AllOf/AnyOf)."""

import pytest

from repro.errors import SimulationError
from repro.sim import Environment


def test_all_of_waits_for_everything():
    env = Environment()

    def proc(env):
        t1 = env.timeout(1.0, value="one")
        t2 = env.timeout(5.0, value="five")
        result = yield env.all_of([t1, t2])
        return (env.now, sorted(result.values()))

    process = env.process(proc(env))
    env.run()
    assert process.value == (5.0, ["five", "one"])


def test_any_of_fires_on_first():
    env = Environment()

    def proc(env):
        t1 = env.timeout(1.0, value="fast")
        t2 = env.timeout(5.0, value="slow")
        result = yield env.any_of([t1, t2])
        return (env.now, list(result.values()))

    process = env.process(proc(env))
    env.run()
    assert process.value == (1.0, ["fast"])


def test_all_of_empty_succeeds_immediately():
    env = Environment()

    def proc(env):
        result = yield env.all_of([])
        return result

    process = env.process(proc(env))
    env.run()
    assert process.value == {}


def test_all_of_with_already_fired_events():
    env = Environment()
    gate = env.event()
    gate.succeed("done")

    def proc(env):
        yield env.timeout(1.0)
        result = yield env.all_of([gate])
        return result[gate]

    process = env.process(proc(env))
    env.run()
    assert process.value == "done"


def test_all_of_failure_propagates():
    env = Environment()
    caught = []

    def proc(env):
        good = env.timeout(1.0)
        bad = env.event()
        bad.fail(ValueError("broken"))
        try:
            yield env.all_of([good, bad])
        except ValueError as exc:
            caught.append(str(exc))

    env.process(proc(env))
    env.run()
    assert caught == ["broken"]


def test_any_of_ignores_late_failure_after_success():
    env = Environment()

    def failer(env, gate):
        yield env.timeout(5.0)
        gate.fail(RuntimeError("late failure"))

    def proc(env):
        fast = env.timeout(1.0, value="fast")
        gate = env.event()
        env.process(failer(env, gate))
        result = yield env.any_of([fast, gate])
        return list(result.values())

    process = env.process(proc(env))
    env.run()  # must not raise despite the late failure
    assert process.value == ["fast"]


def test_condition_rejects_mixed_environments():
    env_a = Environment()
    env_b = Environment()
    with pytest.raises(SimulationError):
        env_a.all_of([env_b.event()])


def test_all_of_values_in_firing_order():
    env = Environment()

    def proc(env):
        slow = env.timeout(2.0, value="slow")
        fast = env.timeout(1.0, value="fast")
        result = yield env.all_of([slow, fast])
        return list(result.values())

    process = env.process(proc(env))
    env.run()
    assert process.value == ["fast", "slow"]


def test_any_of_losers_do_not_accumulate_callbacks():
    """Losing sources of many conditions keep O(1) callbacks.

    Regression test: each ``any_of`` used to leave its bound ``_check``
    on the long-lived loser, pinning every dead condition (and its
    result dict) to the event for the event's whole lifetime.
    """
    env = Environment()

    def proc(env):
        slow = env.timeout(1000.0, value="slow")
        for _ in range(50):
            fast = env.timeout(0.001, value="fast")
            yield env.any_of([fast, slow])
        return len(slow.callbacks)

    process = env.process(proc(env))
    env.run(until=1.0)
    # One shared defuser at most — not one closure per finished race.
    assert process.value <= 2


def test_all_of_failure_releases_surviving_sources():
    env = Environment()

    def proc(env):
        slow = env.timeout(1000.0, value="slow")
        for _ in range(50):
            doomed = env.event()
            env.defer(lambda e: e.fail(RuntimeError("boom")),
                      doomed, delay=0.001)
            try:
                yield env.all_of([doomed, slow])
            except RuntimeError:
                pass
        return len(slow.callbacks)

    process = env.process(proc(env))
    env.run(until=1.0)
    assert process.value <= 2


def test_released_loser_failure_still_defused():
    """A loser that fails *after* its condition resolved must not crash."""
    env = Environment()

    def proc(env):
        fast = env.timeout(1.0, value="fast")
        loser = env.event()
        env.defer(lambda e: e.fail(RuntimeError("late")),
                  loser, delay=5.0)
        result = yield env.any_of([fast, loser])
        return list(result.values())

    process = env.process(proc(env))
    env.run()  # the late failure must be defused by the released loser
    assert process.value == ["fast"]
