"""Unit tests for tracing and utilisation measurement."""

from repro.sim import Environment, Trace, utilization
from repro.sim.monitor import Span


def test_trace_records_span_boundaries():
    env = Environment()
    trace = Trace(env)

    def proc(env):
        handle = trace.begin("compute", "fp0", layer=0)
        yield env.timeout(2.0)
        trace.end(handle)

    env.process(proc(env))
    env.run()
    (span,) = trace.spans
    assert (span.category, span.name, span.start, span.end) == ("compute", "fp0", 0.0, 2.0)
    assert span.duration == 2.0
    assert dict(span.meta) == {"layer": 0}


def test_disabled_trace_records_nothing():
    env = Environment()
    trace = Trace(env, enabled=False)
    handle = trace.begin("compute", "fp0")
    trace.end(handle)
    trace.point("x", "y")
    trace.span("a", "b", 0.0, 1.0)
    assert trace.spans == []
    assert trace.points == []


def test_trace_point_records_current_time():
    env = Environment()
    trace = Trace(env)

    def proc(env):
        yield env.timeout(1.5)
        trace.point("marker", "iteration-end")

    env.process(proc(env))
    env.run()
    assert trace.points == [(1.5, "marker", "iteration-end")]


def test_by_category_filters():
    env = Environment()
    trace = Trace(env)
    trace.span("compute", "a", 0.0, 1.0)
    trace.span("network", "b", 0.0, 1.0)
    assert [span.name for span in trace.by_category("network")] == ["b"]


def test_utilization_merges_overlaps():
    spans = [Span("net", "a", 0.0, 2.0), Span("net", "b", 1.0, 3.0)]
    assert utilization(spans, 0.0, 4.0) == 0.75


def test_utilization_clips_to_window():
    spans = [Span("net", "a", -5.0, 5.0)]
    assert utilization(spans, 0.0, 10.0) == 0.5


def test_utilization_empty_window():
    assert utilization([], 5.0, 5.0) == 0.0


def test_utilization_no_spans():
    assert utilization([], 0.0, 10.0) == 0.0
