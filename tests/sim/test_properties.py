"""Property-based tests for the simulation kernel."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment, Resource, Store


@given(delays=st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=40))
@settings(max_examples=60, deadline=None)
def test_timeouts_fire_in_nondecreasing_time_order(delays):
    env = Environment()
    fired = []
    for index, delay in enumerate(delays):
        env.timeout(delay).callbacks.append(
            lambda _evt, i=index: fired.append((env.now, i))
        )
    env.run()
    times = [time for time, _index in fired]
    assert times == sorted(times)
    assert len(fired) == len(delays)
    assert env.now == max(delays)


@given(delays=st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=2, max_size=20))
@settings(max_examples=40, deadline=None)
def test_equal_time_events_fire_in_schedule_order(delays):
    env = Environment()
    fired = []
    for index, delay in enumerate(delays):
        env.timeout(delay).callbacks.append(lambda _evt, i=index: fired.append(i))
    env.run()
    # Stable: among equal delays, earlier-scheduled fires first.
    by_key = sorted(range(len(delays)), key=lambda i: (delays[i], i))
    assert fired == by_key


@given(
    capacity=st.integers(min_value=1, max_value=5),
    holds=st.lists(st.floats(min_value=0.01, max_value=2.0), min_size=1, max_size=25),
)
@settings(max_examples=40, deadline=None)
def test_resource_never_exceeds_capacity(capacity, holds):
    env = Environment()
    resource = Resource(env, capacity=capacity)
    concurrent = [0]
    peak = [0]

    def user(env, hold):
        with resource.request() as grant:
            yield grant
            concurrent[0] += 1
            peak[0] = max(peak[0], concurrent[0])
            yield env.timeout(hold)
            concurrent[0] -= 1

    for hold in holds:
        env.process(user(env, hold))
    env.run()
    assert peak[0] <= capacity
    assert concurrent[0] == 0
    assert resource.count == 0


@given(items=st.lists(st.integers(), min_size=1, max_size=30))
@settings(max_examples=40, deadline=None)
def test_store_preserves_fifo_order(items):
    env = Environment()
    store = Store(env)
    received = []

    def producer(env):
        for item in items:
            yield store.put(item)
            yield env.timeout(0.1)

    def consumer(env):
        for _ in items:
            value = yield store.get()
            received.append(value)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert received == items


@given(
    delays=st.lists(st.floats(min_value=0.0, max_value=5.0), min_size=1, max_size=15),
    seed_order=st.randoms(use_true_random=False),
)
@settings(max_examples=30, deadline=None)
def test_simulation_is_deterministic(delays, seed_order):
    def run():
        env = Environment()
        log = []

        def proc(env, delay, tag):
            yield env.timeout(delay)
            log.append((env.now, tag))
            yield env.timeout(delay / 2)
            log.append((env.now, tag))

        for index, delay in enumerate(delays):
            env.process(proc(env, delay, index))
        env.run()
        return log

    assert run() == run()


# -- faulted-run determinism regression -------------------------------------


def _faulted_trace(seed):
    """One traced faulted run; returns (spans, points, speed)."""
    from repro.faults import FaultPlan
    from repro.training import ClusterSpec, SchedulerSpec, TrainingJob
    from repro.training.runner import resolve_model

    plan = FaultPlan.parse(
        "straggler:w0@0.0-infx1.4;slowlink:w1.up@0.0-0.02x0.5;loss:0.05"
    ).with_seed(seed)
    cluster = ClusterSpec(
        machines=2, gpus_per_machine=1, retry_timeout=0.02
    )
    spec = SchedulerSpec(kind="bytescheduler", partition_bytes=8e6, credit_bytes=32e6)
    job = TrainingJob(
        resolve_model("resnet50"), cluster, spec,
        enable_trace=True, fault_plan=plan,
    )
    result = job.run(measure=2, warmup=1)
    return job.trace.spans, job.trace.points, result.speed


def test_faulted_run_is_deterministic_for_equal_seeds():
    """The same fault plan + seed twice → byte-identical trace."""
    spans_a, points_a, speed_a = _faulted_trace(seed=7)
    spans_b, points_b, speed_b = _faulted_trace(seed=7)
    assert speed_a == speed_b
    assert points_a == points_b
    assert spans_a == spans_b
    # Byte-identical, not merely approximately equal.
    assert repr(spans_a) == repr(spans_b)


def test_faulted_runs_diverge_across_seeds():
    """Different seeds draw different loss patterns → different traces."""
    spans_a, _points_a, speed_a = _faulted_trace(seed=7)
    spans_b, _points_b, speed_b = _faulted_trace(seed=8)
    assert (spans_a, speed_a) != (spans_b, speed_b)
