"""Heap/calendar kernel equivalence: identical trajectories by construction.

The calendar queue is only allowed to change *how fast* the kernel runs,
never *what* it runs: both implementations order entries by
``(time, priority, sequence)``, so any program must produce the same
firing log — same simulated times, same order, same tie-breaks — on
either.  The property test drives random programs mixing timeouts,
bare deferred callbacks, process sleeps, and urgent interrupts through
both kernels and compares the logs exactly (no tolerance: the float
arithmetic is identical, so the times must be too).
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import Interrupt, SimulationError
from repro.sim import (
    DEFAULT_QUEUE,
    QUEUE_ENV_VAR,
    QUEUE_KINDS,
    Environment,
    resolve_queue,
)

# Exact collisions (tie-breaks) plus wide-dynamic-range floats: the
# calendar queue must agree with the heap across its due list, its
# bucket ring, and its far-future overflow heap.
delays = st.one_of(
    st.sampled_from([0.0, 0.0, 1e-9, 0.001, 0.001, 0.5, 1.0, 1.0, 2.0]),
    st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
    st.floats(min_value=0.0, max_value=1e-5, allow_nan=False),
)

operations = st.lists(
    st.one_of(
        st.tuples(st.just("timeout"), delays),
        st.tuples(st.just("defer"), delays),
        # A process sleeping ``b`` with an interrupt fuse at ``a``:
        # covers urgent-priority scheduling and generator resumption.
        st.tuples(st.just("sleep"), delays, delays),
        # A timeout whose callback schedules another at fire time:
        # covers pushes landing behind the calendar cursor mid-run.
        st.tuples(st.just("chain"), delays, delays),
    ),
    min_size=1,
    max_size=30,
)


def execute(ops, queue):
    """Run one random program and return its complete firing log."""
    env = Environment(queue=queue)
    log = []
    for i, op in enumerate(ops):
        kind = op[0]
        if kind == "timeout":
            env.timeout(op[1], value=i).callbacks.append(
                lambda _evt, i=i: log.append((env.now, "timeout", i))
            )
        elif kind == "defer":
            env.defer(
                lambda arg: log.append((env.now, "defer", arg)), i, op[1]
            )
        elif kind == "sleep":
            _, fuse_at, duration = op

            def sleeper(env, i=i, duration=duration):
                try:
                    yield env.timeout(duration)
                    log.append((env.now, "wake", i))
                except Interrupt:
                    log.append((env.now, "interrupt", i))

            proc = env.process(sleeper(env))

            def fuse(_evt, proc=proc, i=i):
                log.append((env.now, "fuse", i))
                if proc.is_alive:
                    proc.interrupt("fuse")

            env.timeout(fuse_at).callbacks.append(fuse)
        elif kind == "chain":
            _, first, second = op

            def rearm(_evt, i=i, second=second):
                log.append((env.now, "chain", i))
                env.timeout(second).callbacks.append(
                    lambda _evt, i=i: log.append((env.now, "chain2", i))
                )

            env.timeout(first).callbacks.append(rearm)
    env.run()
    return log


@given(ops=operations)
@settings(max_examples=80, deadline=None)
def test_heap_and_calendar_produce_identical_trajectories(ops):
    assert execute(ops, "heap") == execute(ops, "calendar")


@given(
    delays=st.lists(
        st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
        min_size=1,
        max_size=200,
    )
)
@settings(max_examples=30, deadline=None)
def test_wide_dynamic_range_preserves_order(delays):
    # Nine decades of delay magnitude forces the calendar through
    # recalibration and the far-future heap; order must survive.
    def run(queue):
        env = Environment(queue=queue)
        fired = []
        for i, delay in enumerate(delays):
            env.timeout(delay).callbacks.append(
                lambda _evt, i=i: fired.append((env.now, i))
            )
        env.run()
        return fired

    assert run("heap") == run("calendar")


def test_infinite_delay_parks_on_overflow_heap():
    for queue in QUEUE_KINDS:
        env = Environment(queue=queue)
        fired = []
        env.timeout(math.inf).callbacks.append(lambda _evt: fired.append("inf"))
        env.timeout(1.0).callbacks.append(lambda _evt: fired.append("finite"))
        env.run(until=10.0)
        assert fired == ["finite"]
        assert env.now == 10.0


def test_queue_kind_reports_selection(monkeypatch):
    assert Environment(queue="heap").queue_kind == "heap"
    assert Environment(queue="calendar").queue_kind == "calendar"
    monkeypatch.delenv(QUEUE_ENV_VAR, raising=False)
    assert Environment().queue_kind == DEFAULT_QUEUE


def test_env_var_selects_kernel(monkeypatch):
    monkeypatch.setenv(QUEUE_ENV_VAR, "heap")
    assert Environment().queue_kind == "heap"
    monkeypatch.setenv(QUEUE_ENV_VAR, "calendar")
    assert Environment().queue_kind == "calendar"
    monkeypatch.delenv(QUEUE_ENV_VAR)
    assert Environment().queue_kind == DEFAULT_QUEUE


def test_unknown_queue_name_rejected(monkeypatch):
    with pytest.raises(SimulationError, match="unknown event queue"):
        Environment(queue="splay-tree")
    monkeypatch.setenv(QUEUE_ENV_VAR, "fibonacci")
    with pytest.raises(SimulationError, match="fibonacci"):
        resolve_queue()


def test_constructor_overrides_env_var(monkeypatch):
    monkeypatch.setenv(QUEUE_ENV_VAR, "heap")
    assert Environment(queue="calendar").queue_kind == "calendar"
