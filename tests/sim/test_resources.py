"""Unit tests for simulated resources (Resource/Store/Container)."""

import pytest

from repro.errors import SimulationError
from repro.sim import (
    Container,
    Environment,
    PriorityResource,
    PriorityStore,
    Resource,
    Store,
)


def test_resource_serializes_holders():
    env = Environment()
    resource = Resource(env, capacity=1)
    log = []

    def user(env, tag, hold):
        with resource.request() as req:
            yield req
            log.append((tag, "start", env.now))
            yield env.timeout(hold)
            log.append((tag, "end", env.now))

    env.process(user(env, "a", 2.0))
    env.process(user(env, "b", 1.0))
    env.run()
    assert log == [
        ("a", "start", 0.0),
        ("a", "end", 2.0),
        ("b", "start", 2.0),
        ("b", "end", 3.0),
    ]


def test_resource_capacity_two_runs_pair_concurrently():
    env = Environment()
    resource = Resource(env, capacity=2)
    ends = []

    def user(env, hold):
        with resource.request() as req:
            yield req
            yield env.timeout(hold)
            ends.append(env.now)

    for _ in range(3):
        env.process(user(env, 1.0))
    env.run()
    assert ends == [1.0, 1.0, 2.0]


def test_resource_invalid_capacity():
    env = Environment()
    with pytest.raises(SimulationError):
        Resource(env, capacity=0)


def test_resource_count_and_queue_length():
    env = Environment()
    resource = Resource(env, capacity=1)

    def holder(env):
        with resource.request() as req:
            yield req
            yield env.timeout(10.0)

    env.process(holder(env))
    env.process(holder(env))
    env.run(until=1.0)
    assert resource.count == 1
    assert resource.queue_length == 1


def test_release_unqueued_request_is_cancel():
    env = Environment()
    resource = Resource(env, capacity=1)

    def holder(env):
        with resource.request() as req:
            yield req
            yield env.timeout(5.0)

    def canceller(env):
        yield env.timeout(1.0)
        req = resource.request()
        yield env.timeout(1.0)
        resource.release(req)  # never granted; acts as cancellation

    env.process(holder(env))
    env.process(canceller(env))
    env.run()
    assert resource.queue_length == 0
    assert resource.count == 0


def test_priority_resource_orders_waiters():
    env = Environment()
    resource = PriorityResource(env, capacity=1)
    order = []

    def holder(env):
        with resource.request() as req:
            yield req
            yield env.timeout(10.0)

    def user(env, delay, priority, tag):
        yield env.timeout(delay)
        with resource.request(priority=priority) as req:
            yield req
            order.append(tag)
            yield env.timeout(1.0)

    env.process(holder(env))
    env.process(user(env, 1.0, 5, "low"))
    env.process(user(env, 2.0, 1, "high"))
    env.run()
    assert order == ["high", "low"]


def test_priority_resource_fifo_within_priority():
    env = Environment()
    resource = PriorityResource(env, capacity=1)
    order = []

    def holder(env):
        with resource.request() as req:
            yield req
            yield env.timeout(10.0)

    def user(env, delay, tag):
        yield env.timeout(delay)
        with resource.request(priority=3) as req:
            yield req
            order.append(tag)

    env.process(holder(env))
    env.process(user(env, 1.0, "first"))
    env.process(user(env, 2.0, "second"))
    env.run()
    assert order == ["first", "second"]


def test_store_fifo_order():
    env = Environment()
    store = Store(env)
    got = []

    def producer(env):
        for item in ("x", "y", "z"):
            yield store.put(item)
            yield env.timeout(1.0)

    def consumer(env):
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert got == ["x", "y", "z"]


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)

    def consumer(env):
        item = yield store.get()
        return (env.now, item)

    def producer(env):
        yield env.timeout(4.0)
        yield store.put("late")

    process = env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert process.value == (4.0, "late")


def test_store_capacity_blocks_put():
    env = Environment()
    store = Store(env, capacity=1)
    times = []

    def producer(env):
        yield store.put(1)
        times.append(env.now)
        yield store.put(2)
        times.append(env.now)

    def consumer(env):
        yield env.timeout(5.0)
        yield store.get()

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert times == [0.0, 5.0]


def test_store_invalid_capacity():
    env = Environment()
    with pytest.raises(SimulationError):
        Store(env, capacity=0)


def test_priority_store_yields_smallest_first():
    env = Environment()
    store = PriorityStore(env)
    got = []

    def producer(env):
        for item in ((3, "c"), (1, "a"), (2, "b")):
            yield store.put(item)

    def consumer(env):
        yield env.timeout(1.0)
        for _ in range(3):
            item = yield store.get()
            got.append(item[1])

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert got == ["a", "b", "c"]


def test_container_get_blocks_until_level():
    env = Environment()
    tank = Container(env, capacity=100.0, init=0.0)

    def consumer(env):
        yield tank.get(30.0)
        return env.now

    def producer(env):
        for _ in range(3):
            yield env.timeout(1.0)
            yield tank.put(10.0)

    process = env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert process.value == 3.0
    assert tank.level == 0.0


def test_container_put_blocks_at_capacity():
    env = Environment()
    tank = Container(env, capacity=10.0, init=10.0)

    def producer(env):
        yield tank.put(5.0)
        return env.now

    def consumer(env):
        yield env.timeout(2.0)
        yield tank.get(7.0)

    process = env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert process.value == 2.0
    assert tank.level == 8.0


def test_container_invalid_init():
    env = Environment()
    with pytest.raises(SimulationError):
        Container(env, capacity=5.0, init=6.0)


def test_container_oversized_put_rejected():
    env = Environment()
    tank = Container(env, capacity=5.0)
    with pytest.raises(SimulationError):
        tank.put(6.0)


def test_container_negative_amount_rejected():
    env = Environment()
    tank = Container(env, capacity=5.0)
    with pytest.raises(SimulationError):
        tank.get(-1.0)


def test_container_cancel_pending_get():
    env = Environment()
    tank = Container(env, capacity=10.0)
    pending = tank.get(5.0)
    tank.cancel(pending)
    tank.put(5.0)
    env.run()
    assert tank.level == 5.0
    assert not pending.triggered


def test_container_cancel_triggered_event_raises():
    env = Environment()
    tank = Container(env, capacity=10.0, init=5.0)
    granted = tank.get(5.0)
    with pytest.raises(SimulationError):
        tank.cancel(granted)
