"""Public API surface checks: units, errors, and package exports."""

import pytest

import repro
from repro import analysis, comm, core, frameworks, models, net, sim, training, tuning
from repro.errors import (
    ConfigError,
    Interrupt,
    ReproError,
    SchedulerError,
    SimulationError,
    TuningError,
)
from repro.units import GB, KB, MB, MS, US, gbps, to_gbps


def test_version_is_exposed():
    assert isinstance(repro.__version__, str)
    assert repro.__version__.count(".") == 2


def test_units_are_consistent():
    assert MB == 1024 * KB
    assert GB == 1024 * MB
    assert MS == 1000 * US


def test_gbps_conversion():
    assert gbps(8) == pytest.approx(1e9)
    assert to_gbps(1.25e9) == pytest.approx(10.0)


def test_error_hierarchy():
    for error in (SimulationError, ConfigError, SchedulerError, TuningError, Interrupt):
        assert issubclass(error, ReproError)
    assert issubclass(ReproError, Exception)


def test_interrupt_carries_cause():
    interrupt = Interrupt("why")
    assert interrupt.cause == "why"


@pytest.mark.parametrize(
    "module,names",
    [
        (sim, ["Environment", "Process", "Resource", "Store", "Trace"]),
        (net, ["Fabric", "Link", "Message", "TCPTransport", "RDMATransport"]),
        (models, ["ModelSpec", "vgg16", "get_model", "figure2_model"]),
        (frameworks, ["MXNetEngine", "TensorFlowEngine", "PyTorchEngine"]),
        (comm, ["PSBackend", "RingAllReduceBackend", "ChunkSpec"]),
        (core, ["ByteSchedulerCore", "CommTask", "ByteSchedulerAdapter"]),
        (tuning, ["AutoTuner", "OnlineTuner", "BayesianOptimizer", "SearchSpace"]),
        (analysis, ["ideal_iteration_time", "ps_delay_bound", "analyze_worker"]),
        (training, ["ClusterSpec", "SchedulerSpec", "TrainingJob", "run_experiment"]),
    ],
)
def test_documented_exports_exist(module, names):
    for name in names:
        assert hasattr(module, name), f"{module.__name__}.{name} missing"
        assert name in module.__all__


def test_all_exports_resolve():
    for module in (sim, net, models, frameworks, comm, core, tuning, analysis, training):
        for name in module.__all__:
            assert getattr(module, name) is not None
