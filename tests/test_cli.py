"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


def test_models_lists_zoo(capsys):
    code, out = run_cli(capsys, "models")
    assert code == 0
    for name in ("vgg16", "resnet50", "transformer", "alexnet", "vgg19"):
        assert name in out


def test_run_prints_summary(capsys):
    code, out = run_cli(
        capsys,
        "run", "--model", "resnet50", "--machines", "2",
        "--gpus-per-machine", "2", "--measure", "2",
    )
    assert code == 0
    assert "images/s" in out


def test_run_compare_reports_speedup(capsys):
    code, out = run_cli(
        capsys,
        "run", "--model", "vgg16", "--machines", "2",
        "--gpus-per-machine", "2", "--measure", "2",
        "--scheduler", "bytescheduler",
        "--partition-mb", "2", "--credit-mb", "8", "--compare",
    )
    assert code == 0
    assert "speedup over baseline" in out


def test_run_timeline(capsys):
    code, out = run_cli(
        capsys,
        "run", "--model", "resnet50", "--machines", "2",
        "--gpus-per-machine", "1", "--measure", "2", "--timeline",
        "--scheduler", "fifo",
    )
    assert code == 0
    assert "stall" in out
    assert "GPU" in out


def test_tune_reports_best_knobs(capsys):
    code, out = run_cli(
        capsys,
        "tune", "--model", "vgg16", "--machines", "2",
        "--gpus-per-machine", "2", "--trials", "4",
    )
    assert code == 0
    assert "best knobs" in out


def test_reproduce_figure2(capsys):
    code, out = run_cli(capsys, "reproduce", "figure2")
    assert code == 0
    assert "44.4%" in out


def test_reproduce_fast_figure10(capsys):
    code, out = run_cli(capsys, "reproduce", "figure10", "--fast")
    assert code == 0
    assert "bytescheduler" in out


def test_unknown_target_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["reproduce", "figure99"])


def test_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_version_flag():
    with pytest.raises(SystemExit) as excinfo:
        build_parser().parse_args(["--version"])
    assert excinfo.value.code == 0


def test_run_with_fault_plan_prints_plan_and_robustness(capsys):
    code, out = run_cli(
        capsys,
        "run", "--model", "resnet50", "--machines", "2",
        "--gpus-per-machine", "1", "--measure", "2",
        "--fault-plan", "straggler:w0@0.0-infx1.5;loss:0.05;seed:3",
        "--retry-timeout-ms", "20",
    )
    assert code == 0
    assert "fault plan: straggler w0 x1.5" in out
    assert "loss p=0.05" in out
    assert "transfer timeouts" in out and "retries" in out


def test_run_faulted_compare_faults_both_schedulers(capsys):
    code, out = run_cli(
        capsys,
        "run", "--model", "resnet50", "--machines", "2",
        "--gpus-per-machine", "1", "--measure", "2",
        "--partition-mb", "8", "--credit-mb", "32",
        "--fault-plan", "slowlink:w0.up@0.0-infx0.5", "--compare",
    )
    assert code == 0
    assert "speedup over baseline" in out


def test_run_rejects_malformed_fault_plan(capsys):
    code = main([
        "run", "--model", "resnet50", "--machines", "2",
        "--gpus-per-machine", "1", "--measure", "2",
        "--fault-plan", "crash:s0@0.2;warp:w0@0-1x2",
    ])
    captured = capsys.readouterr()
    assert code == 2
    # The typed error names the offending clause and its position, and
    # the CLI turns it into a clean message instead of a traceback.
    assert "invalid --fault-plan" in captured.err
    assert "clause 2" in captured.err and "warp" in captured.err


def test_run_integrity_plan_prints_counters(capsys):
    code, out = run_cli(
        capsys,
        "run", "--model", "resnet50", "--machines", "2",
        "--gpus-per-machine", "1", "--measure", "2",
        "--fault-plan", "seed:7;corrupt:s0.down@0-0.5%0.05;"
        "dup:w1.up@0-0.5%0.05;reorder:s1.down@0-0.5%0.05",
    )
    assert code == 0
    assert "integrity:" in out
    assert "accounting balanced" in out
    assert "invariants:" in out and "0 violations" in out


def test_run_integrity_flag_enables_protocol_without_faults(capsys):
    code, out = run_cli(
        capsys,
        "run", "--model", "resnet50", "--machines", "2",
        "--gpus-per-machine", "1", "--measure", "2", "--integrity",
    )
    assert code == 0
    assert "integrity: 0 corrupt" in out
    assert "invariants:" in out and "0 violations" in out


def test_run_fault_plan_is_deterministic(capsys):
    argv = [
        "run", "--model", "resnet50", "--machines", "2",
        "--gpus-per-machine", "1", "--measure", "2",
        "--fault-plan", "loss:0.05;seed:7", "--retry-timeout-ms", "20",
    ]
    _code, out_a = run_cli(capsys, *argv)
    _code, out_b = run_cli(capsys, *argv)
    assert out_a == out_b


def test_reproduce_faults_fast(capsys):
    code, out = run_cli(capsys, "reproduce", "faults", "--fast")
    assert code == 0
    assert "Goodput under faults" in out
    assert "blackout" in out and "straggler" in out


def test_run_writes_observability_artifacts(capsys, tmp_path):
    import json

    trace_path = tmp_path / "run.json"
    span_path = tmp_path / "spans.jsonl"
    metrics_path = tmp_path / "metrics.json"
    report_path = tmp_path / "report.json"
    code, out = run_cli(
        capsys,
        "run", "--model", "resnet50", "--machines", "2",
        "--gpus-per-machine", "1", "--measure", "2",
        "--trace-out", str(trace_path),
        "--span-log", str(span_path),
        "--metrics-out", str(metrics_path),
        "--report-out", str(report_path),
    )
    assert code == 0
    trace = json.loads(trace_path.read_text())
    events = trace["traceEvents"]
    assert events
    for event in events:
        assert "pid" in event and "tid" in event and "name" in event
        if event["ph"] == "X":
            assert event["ts"] >= 0.0 and event["dur"] >= 0.0
    assert all(json.loads(line) for line in span_path.read_text().splitlines())
    metrics = json.loads(metrics_path.read_text())
    assert metrics["iterations"]
    assert "credit_occupancy" in metrics["iterations"][0]
    report = json.loads(report_path.read_text())
    assert report["model"] == "resnet50"
    assert report["speed"] > 0
    assert f"trace written to {trace_path}" in out


def test_trace_subcommand_summarises(capsys, tmp_path):
    trace_path = tmp_path / "run.json"
    code, _out = run_cli(
        capsys,
        "run", "--model", "resnet50", "--machines", "2",
        "--gpus-per-machine", "1", "--measure", "2",
        "--trace-out", str(trace_path),
    )
    assert code == 0
    code, out = run_cli(capsys, "trace", str(trace_path), "--top", "3")
    assert code == 0
    assert "spans" in out
    assert "link" in out
    assert "longest 3 events" in out


def test_trace_subcommand_rejects_missing_file(capsys):
    code = main(["trace", "/nonexistent/trace.json"])
    captured = capsys.readouterr()
    assert code == 1
    assert "cannot read trace" in captured.err


def test_bench_writes_results(tmp_path, capsys):
    out = tmp_path / "BENCH_micro.json"
    code, stdout = run_cli(
        capsys, "bench", "--repeats", "1",
        "--only", "event_throughput", "--out", str(out),
    )
    assert code == 0
    assert "event_throughput" in stdout
    assert out.exists()


def test_bench_regression_gate(tmp_path, capsys):
    import json

    out = tmp_path / "BENCH_micro.json"
    code, _ = run_cli(
        capsys, "bench", "--repeats", "1",
        "--only", "event_throughput", "--out", str(out),
    )
    assert code == 0
    # Same host, same benchmark: comfortably within the 25% gate.
    code, stdout = run_cli(
        capsys, "bench", "--repeats", "1",
        "--only", "event_throughput", "--out", str(out),
        "--check", str(out),
    )
    assert code == 0
    assert "no regression" in stdout
    # An inflated baseline trips the gate.
    payload = json.loads(out.read_text())
    payload["results"]["event_throughput"]["value"] *= 100
    inflated = tmp_path / "inflated.json"
    inflated.write_text(json.dumps(payload))
    code, _ = run_cli(
        capsys, "bench", "--repeats", "1",
        "--only", "event_throughput", "--out", str(out),
        "--check", str(inflated),
    )
    assert code == 1


def test_bench_unknown_name_rejected(capsys):
    code = main(["bench", "--only", "nonesuch"])
    capsys.readouterr()
    assert code == 2


def test_reproduce_with_cache_dir(tmp_path, capsys):
    code, cold = run_cli(
        capsys, "reproduce", "figure2",
        "--cache-dir", str(tmp_path),
    )
    assert code == 0
    code, warm = run_cli(
        capsys, "reproduce", "figure2",
        "--cache-dir", str(tmp_path),
    )
    assert code == 0
    assert warm == cold
