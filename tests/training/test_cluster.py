"""Unit tests for ClusterSpec/SchedulerSpec."""

import math

import pytest

from repro.comm import PSBackend, RingAllReduceBackend
from repro.errors import ConfigError
from repro.models import vgg16
from repro.sim import Environment
from repro.training import ClusterSpec, SchedulerSpec
from repro.units import KB, MB, gbps


def test_defaults_and_derived():
    spec = ClusterSpec(machines=4)
    assert spec.num_gpus == 32
    assert spec.servers == 4
    assert spec.bandwidth == pytest.approx(gbps(100))
    assert spec.label == "mxnet-ps-rdma-32gpu"


def test_scaled_to():
    spec = ClusterSpec(machines=4, num_servers=2)
    bigger = spec.scaled_to(8)
    assert bigger.machines == 8
    assert bigger.servers == 8  # num_servers resets to machine count


def test_validation():
    with pytest.raises(ConfigError):
        ClusterSpec(machines=0)
    with pytest.raises(ConfigError):
        ClusterSpec(machines=1, gpus_per_machine=0)
    with pytest.raises(ConfigError):
        ClusterSpec(machines=1, bandwidth_gbps=0)
    with pytest.raises(ConfigError):
        ClusterSpec(machines=1, arch="gossip")
    with pytest.raises(ConfigError):
        ClusterSpec(machines=1, framework="caffe")
    with pytest.raises(ConfigError):
        ClusterSpec(machines=1, transport="infiniband")


def test_pytorch_requires_allreduce():
    """§5: the PyTorch plugin exists only for all-reduce."""
    with pytest.raises(ConfigError):
        ClusterSpec(machines=1, framework="pytorch", arch="ps")
    ClusterSpec(machines=1, framework="pytorch", arch="allreduce")


def test_build_ps():
    env = Environment()
    spec = ClusterSpec(machines=2, arch="ps")
    built = spec.build(env, layer_bytes=vgg16().layer_bytes())
    assert isinstance(built.backend, PSBackend)
    assert built.workers == ("w0", "w1")
    assert built.fabric is not None
    assert set(built.fabric.nodes) == {"w0", "w1", "s0", "s1"}


def test_build_allreduce():
    env = Environment()
    spec = ClusterSpec(machines=2, arch="allreduce")
    built = spec.build(env, layer_bytes=vgg16().layer_bytes())
    assert isinstance(built.backend, RingAllReduceBackend)
    assert built.backend.ring_size == 16
    assert built.fabric is None


def test_rdma_allreduce_faster_sync_than_tcp():
    env = Environment()
    rdma = ClusterSpec(machines=2, arch="allreduce", transport="rdma").build(
        env, layer_bytes=(1,)
    )
    tcp = ClusterSpec(machines=2, arch="allreduce", transport="tcp").build(
        env, layer_bytes=(1,)
    )
    assert rdma.backend.sync_overhead() < tcp.backend.sync_overhead()


def test_scheduler_spec_defaults():
    fifo = SchedulerSpec(kind="fifo")
    assert fifo.resolved_partition("allreduce") is None
    assert fifo.resolved_partition("ps") == 4 * MB
    assert math.isinf(fifo.resolved_credit())
    assert not fifo.scheduled

    p3 = SchedulerSpec(kind="p3")
    assert p3.resolved_partition("ps") == 160 * KB
    assert p3.resolved_credit() == 3 * 160 * KB
    assert p3.scheduled

    bs = SchedulerSpec(kind="bytescheduler", partition_bytes=2 * MB, credit_bytes=8 * MB)
    assert bs.resolved_partition("ps") == 2 * MB
    assert bs.resolved_credit() == 8 * MB


def test_fifo_baseline_partition_is_slice_granular():
    """The vanilla PS baseline moves MXNet-style per-server slices."""
    fifo = SchedulerSpec(kind="fifo")
    unit = fifo.resolved_partition("ps", largest_tensor_bytes=411e6, servers=8)
    assert unit == pytest.approx(411e6 / 8)
    # ...but never below the 4 MB big-array bound.
    small = fifo.resolved_partition("ps", largest_tensor_bytes=8e6, servers=8)
    assert small == 4 * MB


def test_scheduler_spec_validation():
    with pytest.raises(ConfigError):
        SchedulerSpec(kind="tictac")
    with pytest.raises(ConfigError):
        SchedulerSpec(partition_bytes=0)
    with pytest.raises(ConfigError):
        SchedulerSpec(credit_bytes=-1)


def test_with_knobs():
    spec = SchedulerSpec(kind="bytescheduler").with_knobs(1 * MB, 4 * MB)
    assert spec.partition_bytes == 1 * MB
    assert spec.credit_bytes == 4 * MB


# -- shared fabrics and placement ------------------------------------------


def _ps_fabric(env, machines=2):
    built = ClusterSpec(machines=machines, arch="ps").build(
        env, layer_bytes=(1000,)
    )
    return built.fabric


def test_shared_fabric_rejected_for_allreduce():
    """The documented PS-only constraint is now enforced, not implied:
    the all-reduce backend would silently ignore the fabric."""
    env = Environment()
    fabric = _ps_fabric(env)
    with pytest.raises(ConfigError, match="PS architecture"):
        ClusterSpec(machines=2, arch="allreduce").build(
            env, layer_bytes=(1000,), shared_fabric=fabric
        )


def test_placement_requires_shared_fabric():
    env = Environment()
    with pytest.raises(ConfigError, match="shared_fabric"):
        ClusterSpec(machines=2, arch="ps").build(
            env, layer_bytes=(1000,), placement=("w0", "w1")
        )


def test_placement_aliases_tenants_onto_machines():
    from repro.net import HierarchicalFabric, TopologySpec, Transport

    env = Environment()
    topology = TopologySpec(racks=2, machines_per_rack=2)
    fabric = HierarchicalFabric(env, topology, gbps(100), Transport("t", 0.0, 1.0))
    built = ClusterSpec(machines=2, arch="ps").build(
        env,
        layer_bytes=(1000,),
        shared_fabric=fabric,
        placement=("r0m0", "r0m1"),
        tenant="jobA.",
    )
    assert built.workers == ("jobA.w0", "jobA.w1")
    assert fabric.canonical("jobA.w0") == "r0m0"
    assert fabric.canonical("jobA.s1") == "r0m1"  # servers round-robin
    # A second tenant lands on the same machines without name clashes.
    second = ClusterSpec(machines=2, arch="ps").build(
        env,
        layer_bytes=(1000,),
        shared_fabric=fabric,
        placement=("r0m1", "r1m0"),
        tenant="jobB.",
    )
    assert second.workers == ("jobB.w0", "jobB.w1")
    assert fabric.canonical("jobB.w0") == "r0m1"


def test_placement_validation_errors():
    from repro.net import HierarchicalFabric, TopologySpec, Transport

    env = Environment()
    topology = TopologySpec(racks=1, machines_per_rack=2)
    fabric = HierarchicalFabric(env, topology, gbps(100), Transport("t", 0.0, 1.0))
    spec = ClusterSpec(machines=2, arch="ps")
    with pytest.raises(ConfigError, match="placement names"):
        spec.build(env, layer_bytes=(1000,), shared_fabric=fabric,
                   placement=("r0m0",))
    with pytest.raises(ConfigError):
        spec.build(env, layer_bytes=(1000,), shared_fabric=fabric,
                   placement=("r0m0", "no-such-machine"))
    # Re-using a tenant prefix collides on alias names.
    spec.build(env, layer_bytes=(1000,), shared_fabric=fabric,
               placement=("r0m0", "r0m1"), tenant="dup.")
    with pytest.raises(ConfigError):
        spec.build(env, layer_bytes=(1000,), shared_fabric=fabric,
                   placement=("r0m0", "r0m1"), tenant="dup.")
