"""End-to-end conservation and accounting invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import custom_model
from repro.training import ClusterSpec, SchedulerSpec, TrainingJob
from repro.units import MB


def make_model(layer_bytes):
    n = len(layer_bytes)
    return custom_model(
        layer_bytes=layer_bytes,
        fp_times=[0.001] * n,
        bp_times=[0.002] * n,
        batch_size=8,
        name="conserve",
    )


@pytest.mark.parametrize("kind", ["fifo", "bytescheduler", "p3"])
def test_ps_worker_uplink_carries_exactly_the_model(kind):
    """Every iteration each worker pushes the full gradient volume —
    no bytes lost, none duplicated, for every scheduler."""
    model = make_model([3 * MB, 9 * MB, 1 * MB])
    cluster = ClusterSpec(machines=2, gpus_per_machine=1, bandwidth_gbps=10)
    job = TrainingJob(model, cluster, SchedulerSpec(kind=kind))
    iterations = 4
    job.run(measure=iterations - 1, warmup=1)
    for worker in job.workers:
        pushed = job.fabric.nic(worker).uplink.bytes_sent
        assert pushed == pytest.approx(iterations * model.total_bytes)


def test_ps_worker_downlink_receives_exactly_the_model():
    model = make_model([2 * MB, 6 * MB])
    cluster = ClusterSpec(machines=2, gpus_per_machine=1, bandwidth_gbps=10)
    job = TrainingJob(model, cluster, SchedulerSpec(kind="bytescheduler"))
    iterations = 3
    job.run(measure=iterations - 1, warmup=1)
    for worker in job.workers:
        pulled = job.fabric.nic(worker).downlink.bytes_sent
        assert pulled == pytest.approx(iterations * model.total_bytes)


def test_allreduce_reduces_exactly_the_model():
    model = make_model([4 * MB, 12 * MB, 2 * MB])
    cluster = ClusterSpec(
        machines=2, gpus_per_machine=1, bandwidth_gbps=10, arch="allreduce"
    )
    job = TrainingJob(model, cluster, SchedulerSpec(kind="fifo"))
    iterations = 3
    job.run(measure=iterations - 1, warmup=1)
    assert job.backend.bytes_reduced == pytest.approx(iterations * model.total_bytes)


def test_server_load_is_balanced_under_chunk_sharding():
    model = make_model([1 * MB, 30 * MB, 2 * MB, 3 * MB])
    cluster = ClusterSpec(
        machines=2, gpus_per_machine=1, bandwidth_gbps=10, sharding="chunk"
    )
    job = TrainingJob(
        model,
        cluster,
        SchedulerSpec(kind="bytescheduler", partition_bytes=1 * MB, credit_bytes=4 * MB),
    )
    job.run(measure=2, warmup=1)
    loads = [
        job.fabric.nic(server).downlink.bytes_sent
        for server in ("s0", "s1")
    ]
    assert max(loads) / min(loads) < 1.3


def test_server_load_is_skewed_under_layer_sharding():
    model = make_model([1 * MB, 30 * MB, 2 * MB, 3 * MB])
    cluster = ClusterSpec(
        machines=2, gpus_per_machine=1, bandwidth_gbps=10, sharding="layer"
    )
    job = TrainingJob(
        model,
        cluster,
        SchedulerSpec(kind="bytescheduler", partition_bytes=1 * MB, credit_bytes=4 * MB),
    )
    job.run(measure=2, warmup=1)
    loads = [
        job.fabric.nic(server).downlink.bytes_sent
        for server in ("s0", "s1")
    ]
    assert max(loads) / min(loads) > 5  # layer 1 (30 MB) pins one server


@given(
    layer_bytes=st.lists(
        st.integers(min_value=64 * 1024, max_value=8 * 1024 * 1024),
        min_size=2,
        max_size=6,
    ),
    kind=st.sampled_from(["fifo", "bytescheduler"]),
)
@settings(max_examples=15, deadline=None)
def test_random_models_complete_and_conserve(layer_bytes, kind):
    """Property: any well-formed model trains to completion with exact
    byte accounting, under either scheduler."""
    model = make_model(layer_bytes)
    cluster = ClusterSpec(machines=2, gpus_per_machine=1, bandwidth_gbps=10)
    job = TrainingJob(model, cluster, SchedulerSpec(kind=kind))
    result = job.run(measure=2, warmup=1)
    assert result.speed > 0
    pushed = job.fabric.nic("w0").uplink.bytes_sent
    assert pushed == pytest.approx(3 * model.total_bytes)
