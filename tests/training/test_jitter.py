"""Tests for straggler (compute jitter) modelling."""

import pytest

from repro.errors import ConfigError
from repro.models import custom_model
from repro.training import ClusterSpec, SchedulerSpec, run_experiment
from repro.units import MB


def model():
    return custom_model(
        layer_bytes=[4 * MB, 12 * MB, 2 * MB],
        fp_times=[0.002] * 3,
        bp_times=[0.004] * 3,
        batch_size=16,
    )


def cluster(jitter=0.0, seed=0, synchronous=True):
    return ClusterSpec(
        machines=3,
        gpus_per_machine=1,
        bandwidth_gbps=10,
        compute_jitter=jitter,
        seed=seed,
        synchronous=synchronous,
    )


def test_zero_jitter_is_deterministic_default():
    a = run_experiment(model(), cluster(), SchedulerSpec(kind="fifo"), measure=3)
    b = run_experiment(model(), cluster(), SchedulerSpec(kind="fifo"), measure=3)
    assert a.speed == b.speed
    assert a.iteration_time_stdev < 1e-12  # float epsilon on marker diffs


def test_jitter_is_seeded_and_reproducible():
    a = run_experiment(model(), cluster(jitter=0.1, seed=7), SchedulerSpec(kind="fifo"), measure=4)
    b = run_experiment(model(), cluster(jitter=0.1, seed=7), SchedulerSpec(kind="fifo"), measure=4)
    c = run_experiment(model(), cluster(jitter=0.1, seed=8), SchedulerSpec(kind="fifo"), measure=4)
    assert a.speed == b.speed
    assert a.speed != c.speed


def test_jitter_creates_iteration_variance():
    result = run_experiment(
        model(), cluster(jitter=0.15, seed=1), SchedulerSpec(kind="fifo"), measure=6
    )
    assert result.iteration_time_stdev > 0.0


def test_stragglers_slow_synchronous_training():
    """Sync PS waits for the slowest worker's push of every chunk, so
    stragglers cost real throughput (averaged over seeds)."""
    smooth = run_experiment(model(), cluster(), SchedulerSpec(kind="fifo"), measure=6).speed
    jittered = [
        run_experiment(
            model(), cluster(jitter=0.3, seed=seed), SchedulerSpec(kind="fifo"), measure=6
        ).speed
        for seed in range(4)
    ]
    assert sum(jittered) / len(jittered) < smooth


def test_negative_jitter_rejected():
    with pytest.raises(ConfigError):
        ClusterSpec(machines=1, compute_jitter=-0.1)
