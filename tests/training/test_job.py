"""Integration tests: full training runs across the setup matrix.

These use a small synthetic model so every combination of framework,
architecture, transport, and scheduler runs in milliseconds.
"""

import pytest

from repro.errors import ConfigError
from repro.models import custom_model
from repro.training import (
    ClusterSpec,
    SchedulerSpec,
    TrainingJob,
    linear_scaling_speed,
    run_experiment,
)
from repro.units import MB


def comm_bound_model():
    """A model whose synchronisation volume dwarfs its compute."""
    return custom_model(
        layer_bytes=[8 * MB, 24 * MB, 4 * MB, 12 * MB],
        fp_times=[0.002] * 4,
        bp_times=[0.004] * 4,
        batch_size=16,
        name="synthetic-comm-bound",
    )


SETUPS = [
    ("mxnet", "ps", "tcp"),
    ("mxnet", "ps", "rdma"),
    ("tensorflow", "ps", "tcp"),
    ("mxnet", "allreduce", "rdma"),
    ("pytorch", "allreduce", "tcp"),
]


@pytest.mark.parametrize("framework,arch,transport", SETUPS)
@pytest.mark.parametrize("kind", ["fifo", "bytescheduler"])
def test_every_setup_completes(framework, arch, transport, kind):
    cluster = ClusterSpec(
        machines=2, gpus_per_machine=2, transport=transport, arch=arch,
        framework=framework, bandwidth_gbps=10,
    )
    scheduler = SchedulerSpec(
        kind=kind, partition_bytes=2 * MB, credit_bytes=8 * MB
    ) if kind == "bytescheduler" else SchedulerSpec(kind="fifo")
    result = run_experiment(comm_bound_model(), cluster, scheduler, measure=3, warmup=1)
    assert result.speed > 0
    assert len(result.iteration_times()) == 3


@pytest.mark.parametrize("framework,arch,transport", SETUPS)
def test_bytescheduler_never_slower_on_comm_bound_model(framework, arch, transport):
    """The paper's headline claim: acceleration in ALL setups."""
    cluster = ClusterSpec(
        machines=2, gpus_per_machine=2, transport=transport, arch=arch,
        framework=framework, bandwidth_gbps=10,
    )
    base = run_experiment(comm_bound_model(), cluster, SchedulerSpec(kind="fifo"), measure=4)
    # Architecture-appropriate knobs (Table 1: all-reduce wants an order
    # of magnitude larger partitions than PS).
    if arch == "ps":
        knobs = SchedulerSpec(kind="bytescheduler", partition_bytes=2 * MB, credit_bytes=16 * MB)
    else:
        knobs = SchedulerSpec(kind="bytescheduler", partition_bytes=12 * MB, credit_bytes=24 * MB)
    tuned = run_experiment(comm_bound_model(), cluster, knobs, measure=4)
    assert tuned.speed >= base.speed * 0.98


def test_determinism():
    cluster = ClusterSpec(machines=2, bandwidth_gbps=25)
    spec = SchedulerSpec(kind="bytescheduler", partition_bytes=1 * MB, credit_bytes=4 * MB)
    first = run_experiment(comm_bound_model(), cluster, spec, measure=3)
    second = run_experiment(comm_bound_model(), cluster, spec, measure=3)
    assert first.speed == second.speed


def test_markers_monotone_per_worker():
    cluster = ClusterSpec(machines=2, gpus_per_machine=1, bandwidth_gbps=10)
    job = TrainingJob(comm_bound_model(), cluster, SchedulerSpec(kind="fifo"))
    result = job.run(measure=3, warmup=1)
    for times in result.markers.values():
        assert times == sorted(times)
        assert len(times) == 4


def test_workers_are_symmetric():
    cluster = ClusterSpec(machines=3, gpus_per_machine=1, bandwidth_gbps=10)
    job = TrainingJob(comm_bound_model(), cluster, SchedulerSpec(kind="fifo"))
    result = job.run(measure=3, warmup=1)
    finals = [times[-1] for times in result.markers.values()]
    assert max(finals) - min(finals) < 0.05 * max(finals)


def test_ps_uses_one_core_per_worker_allreduce_one_master():
    ps_job = TrainingJob(
        comm_bound_model(), ClusterSpec(machines=3), SchedulerSpec(kind="fifo")
    )
    assert len(set(map(id, ps_job.cores.values()))) == 3
    ar_job = TrainingJob(
        comm_bound_model(),
        ClusterSpec(machines=3, arch="allreduce"),
        SchedulerSpec(kind="fifo"),
    )
    assert len(set(map(id, ar_job.cores.values()))) == 1


def test_samples_per_iteration_counts_all_gpus():
    job = TrainingJob(
        comm_bound_model(),
        ClusterSpec(machines=2, gpus_per_machine=4),
        SchedulerSpec(kind="fifo"),
    )
    assert job.samples_per_iteration == 16 * 8


def test_run_validation():
    job = TrainingJob(comm_bound_model(), ClusterSpec(machines=1), SchedulerSpec())
    with pytest.raises(ConfigError):
        job.run(measure=0)
    with pytest.raises(ConfigError):
        job.run(measure=1, warmup=0)


def test_linear_scaling_is_single_machine_times_count():
    cluster = ClusterSpec(machines=4, bandwidth_gbps=10)
    single = run_experiment(
        comm_bound_model(),
        ClusterSpec(machines=1, bandwidth_gbps=10, arch="allreduce"),
        SchedulerSpec(kind="fifo"),
        measure=6,
    )
    assert linear_scaling_speed(comm_bound_model(), cluster) == pytest.approx(
        4 * single.speed
    )


def test_barrier_crossing_beats_vanilla_barrier():
    """TensorFlow-style engine: ByteScheduler must gain *more* than on
    MXNet because it additionally removes the global barrier."""
    model = comm_bound_model()
    tf_cluster = ClusterSpec(
        machines=2, gpus_per_machine=2, arch="ps", framework="tensorflow",
        transport="tcp", bandwidth_gbps=10,
    )
    base = run_experiment(model, tf_cluster, SchedulerSpec(kind="fifo"), measure=4)
    crossed = run_experiment(
        model,
        tf_cluster,
        SchedulerSpec(kind="bytescheduler", partition_bytes=2 * MB, credit_bytes=16 * MB),
        measure=4,
    )
    assert crossed.speed > base.speed * 1.05


def test_priority_beats_fifo_under_equal_knobs():
    """Isolate the ordering benefit: same partition/credit, only the
    priority mode differs (fifo vs layer)."""
    model = comm_bound_model()
    cluster = ClusterSpec(machines=2, gpus_per_machine=2, bandwidth_gbps=10)
    fifo = run_experiment(
        model,
        cluster,
        SchedulerSpec(kind="fifo", partition_bytes=2 * MB, credit_bytes=16 * MB),
        measure=4,
    )
    priority = run_experiment(
        model,
        cluster,
        SchedulerSpec(kind="bytescheduler", partition_bytes=2 * MB, credit_bytes=16 * MB),
        measure=4,
    )
    assert priority.speed >= fifo.speed


def test_trace_collects_link_spans():
    cluster = ClusterSpec(machines=2, gpus_per_machine=1, bandwidth_gbps=10)
    result = run_experiment(
        comm_bound_model(), cluster, SchedulerSpec(kind="fifo"),
        measure=2, warmup=1, enable_trace=True,
    )
    assert result.speed > 0
