"""Unit tests for training-speed measurement."""

import pytest

from repro.errors import ConfigError
from repro.training import TrainingResult


def make_result(markers, warmup=1, measured=3, samples=100.0):
    return TrainingResult(
        markers={"w0": markers},
        warmup=warmup,
        measured=measured,
        samples_per_iteration=samples,
        sample_unit="images",
        label="test",
    )


def test_iteration_times_skip_warmup():
    # Iteration 0 (warm-up) was slow; steady state is 1s.
    result = make_result([2.0, 3.0, 4.0, 5.0])
    assert result.iteration_times() == [pytest.approx(1.0)] * 3
    assert result.iteration_time == pytest.approx(1.0)
    assert result.speed == pytest.approx(100.0)


def test_stdev_zero_for_constant():
    result = make_result([2.0, 3.0, 4.0, 5.0])
    assert result.iteration_time_stdev == 0.0


def test_stdev_positive_for_jitter():
    result = make_result([2.0, 3.0, 4.5, 5.0])
    assert result.iteration_time_stdev > 0.0


def test_speedup_over():
    fast = make_result([1.0, 1.5, 2.0, 2.5])
    slow = make_result([2.0, 3.0, 4.0, 5.0])
    assert fast.speedup_over(slow) == pytest.approx(1.0)  # 2x = +100%


def test_missing_markers_rejected():
    with pytest.raises(ConfigError):
        make_result([1.0, 2.0])  # needs warmup+measured = 4


def test_zero_measured_rejected():
    with pytest.raises(ConfigError):
        TrainingResult(
            markers={"w0": [1.0]},
            warmup=1,
            measured=0,
            samples_per_iteration=1.0,
            sample_unit="images",
        )


def test_summary_mentions_unit_and_label():
    result = make_result([2.0, 3.0, 4.0, 5.0])
    text = result.summary()
    assert "test" in text
    assert "images/s" in text


def make_multi_result(markers_by_worker, warmup=1, measured=3, samples=100.0):
    return TrainingResult(
        markers=markers_by_worker,
        warmup=warmup,
        measured=measured,
        samples_per_iteration=samples,
        sample_unit="images",
        label="test",
    )


def test_reference_markers_use_slowest_worker():
    # w1 lags on every iteration: the reference timeline must be the
    # element-wise max, not w0's markers.
    result = make_multi_result(
        {
            "w0": [1.0, 2.0, 3.0, 4.0],
            "w1": [1.5, 3.0, 4.5, 6.0],
        }
    )
    assert result._reference_markers() == [1.5, 3.0, 4.5, 6.0]
    assert result.iteration_time == pytest.approx(1.5)
    assert result.speed == pytest.approx(100.0 / 1.5)


def test_reference_markers_elementwise_not_per_worker():
    # Slowness alternates between workers: neither worker's own markers
    # match the reference; each iteration is done when its last
    # straggler finishes.
    result = make_multi_result(
        {
            "w0": [1.0, 3.0, 4.0, 6.0],
            "w1": [2.0, 2.5, 5.0, 5.5],
        }
    )
    assert result._reference_markers() == [2.0, 3.0, 5.0, 6.0]


def test_first_worker_measurement_over_reports_with_straggler():
    # Regression for the pre-fix behaviour, which measured only the
    # first worker: with a straggling w1 the first-worker speed is
    # strictly higher than the true (slowest-worker) speed.
    markers = {
        "w0": [1.0, 2.0, 3.0, 4.0],
        "w1": [1.0, 2.0, 3.0, 5.0],  # straggles on the last iteration
    }
    result = make_multi_result(markers)
    first_worker_only = make_result(markers["w0"])
    assert first_worker_only.speed > result.speed
    assert result.iteration_time == pytest.approx((5.0 - 1.0) / 3)


def test_single_worker_unchanged():
    multi = make_multi_result({"w0": [2.0, 3.0, 4.0, 5.0]})
    single = make_result([2.0, 3.0, 4.0, 5.0])
    assert multi.speed == single.speed
    assert multi.iteration_times() == single.iteration_times()
