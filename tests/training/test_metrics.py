"""Unit tests for training-speed measurement."""

import pytest

from repro.errors import ConfigError
from repro.training import TrainingResult


def make_result(markers, warmup=1, measured=3, samples=100.0):
    return TrainingResult(
        markers={"w0": markers},
        warmup=warmup,
        measured=measured,
        samples_per_iteration=samples,
        sample_unit="images",
        label="test",
    )


def test_iteration_times_skip_warmup():
    # Iteration 0 (warm-up) was slow; steady state is 1s.
    result = make_result([2.0, 3.0, 4.0, 5.0])
    assert result.iteration_times() == [pytest.approx(1.0)] * 3
    assert result.iteration_time == pytest.approx(1.0)
    assert result.speed == pytest.approx(100.0)


def test_stdev_zero_for_constant():
    result = make_result([2.0, 3.0, 4.0, 5.0])
    assert result.iteration_time_stdev == 0.0


def test_stdev_positive_for_jitter():
    result = make_result([2.0, 3.0, 4.5, 5.0])
    assert result.iteration_time_stdev > 0.0


def test_speedup_over():
    fast = make_result([1.0, 1.5, 2.0, 2.5])
    slow = make_result([2.0, 3.0, 4.0, 5.0])
    assert fast.speedup_over(slow) == pytest.approx(1.0)  # 2x = +100%


def test_missing_markers_rejected():
    with pytest.raises(ConfigError):
        make_result([1.0, 2.0])  # needs warmup+measured = 4


def test_zero_measured_rejected():
    with pytest.raises(ConfigError):
        TrainingResult(
            markers={"w0": [1.0]},
            warmup=1,
            measured=0,
            samples_per_iteration=1.0,
            sample_unit="images",
        )


def test_summary_mentions_unit_and_label():
    result = make_result([2.0, 3.0, 4.0, 5.0])
    text = result.summary()
    assert "test" in text
    assert "images/s" in text
