"""Tests for the runner helpers (run_experiment / linear scaling)."""

import pytest

from repro.errors import ConfigError
from repro.models import ModelSpec, custom_model
from repro.training import (
    ClusterSpec,
    linear_scaling_speed,
    run_experiment,
    resolve_model,
)
from repro.units import MB


def test_resolve_model_accepts_name_and_spec():
    by_name = resolve_model("vgg16")
    assert isinstance(by_name, ModelSpec)
    spec = custom_model([1 * MB], [0.001], [0.002])
    assert resolve_model(spec) is spec


def test_resolve_model_unknown_name():
    with pytest.raises(ConfigError):
        resolve_model("lenet")


def test_run_experiment_default_scheduler_is_bytescheduler():
    cluster = ClusterSpec(machines=2, gpus_per_machine=1, bandwidth_gbps=10)
    result = run_experiment(
        custom_model([8 * MB, 2 * MB], [0.002, 0.002], [0.004, 0.004]),
        cluster,
        measure=2,
    )
    assert "bytescheduler" in result.label


def test_linear_scaling_uses_local_aggregation():
    """The 1-machine reference is the vanilla local run — its speed does
    not depend on the distributed architecture (PS vs all-reduce)."""
    model = custom_model([8 * MB, 24 * MB], [0.002] * 2, [0.004] * 2)
    ps = ClusterSpec(machines=4, bandwidth_gbps=10, arch="ps")
    ar = ClusterSpec(machines=4, bandwidth_gbps=10, arch="allreduce")
    assert linear_scaling_speed(model, ps) == pytest.approx(
        linear_scaling_speed(model, ar), rel=1e-9
    )


def test_linear_scaling_framework_barrier_never_helps():
    """A barrier framework can only be slower (or equal) on one machine
    — its linear reference never exceeds the barrier-free one."""
    model = custom_model(
        [32 * MB, 64 * MB], [0.010] * 2, [0.020] * 2, batch_size=16
    )
    mxnet = ClusterSpec(machines=2, framework="mxnet", local_bandwidth=8 * 1024**3)
    tensorflow = ClusterSpec(
        machines=2, framework="tensorflow", local_bandwidth=8 * 1024**3
    )
    assert linear_scaling_speed(model, tensorflow) <= linear_scaling_speed(model, mxnet)


def test_linear_scaling_scales_with_machines():
    model = custom_model([4 * MB], [0.002], [0.004])
    small = ClusterSpec(machines=2, bandwidth_gbps=10)
    large = ClusterSpec(machines=8, bandwidth_gbps=10)
    assert linear_scaling_speed(model, large) == pytest.approx(
        4 * linear_scaling_speed(model, small)
    )
