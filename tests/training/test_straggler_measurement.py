"""Regression tests: measured speed must come from the slowest worker.

The pre-fix :class:`TrainingResult` derived samples/sec from the first
worker's markers only.  A straggler window that covers the *last*
measured iteration delays only the straggling worker's final marker
(the first worker's compute for that iteration does not wait on it),
so the first-worker path misses the stall entirely and over-reports.
"""

import pytest

from repro.faults import FaultPlan
from repro.training import ClusterSpec, SchedulerSpec
from repro.training.job import TrainingJob
from repro.training.runner import resolve_model

# Healthy iteration period for this setup is ~89.1 ms (markers at
# ~0.089, 0.178, 0.267, 0.356); the window below slows w1's compute 5x
# across the final measured iteration only.
PLAN = "straggler:w1@0.27-0.36x5"


def run_straggled():
    cluster = ClusterSpec(machines=2, gpus_per_machine=2)
    spec = SchedulerSpec(
        kind="bytescheduler", partition_bytes=4e6, credit_bytes=16e6
    )
    job = TrainingJob(
        resolve_model("resnet50"),
        cluster,
        spec,
        fault_plan=FaultPlan.parse(PLAN),
    )
    return job.run(measure=3, warmup=1)


def speed_from_markers(result, times):
    window = times[max(result.warmup - 1, 0) : result.warmup + result.measured]
    durations = [b - a for a, b in zip(window, window[1:])]
    return result.samples_per_iteration / (sum(durations) / len(durations))


def test_straggler_delays_only_the_straggling_worker():
    result = run_straggled()
    w0, w1 = result.markers["w0"], result.markers["w1"]
    assert w0[:3] == pytest.approx(w1[:3], abs=1e-3)
    assert w1[-1] > w0[-1]  # only w1's final iteration stalls


def test_speed_derived_from_slowest_worker():
    result = run_straggled()
    reference = [max(pair) for pair in zip(*result.markers.values())]
    assert result.speed == pytest.approx(speed_from_markers(result, reference))


def test_first_worker_path_over_reports():
    # The old measurement (first worker only) misses w1's stall and
    # reports a strictly higher speed than the fixed slowest-worker one.
    result = run_straggled()
    first_worker_speed = speed_from_markers(result, result.markers["w0"])
    assert first_worker_speed > result.speed * 1.2


def test_fixed_speed_pinned():
    # Pin the fixed value so the measurement path cannot silently
    # regress to the over-reporting one (which gives ~1437 here).
    result = run_straggled()
    assert result.speed == pytest.approx(1111.6, rel=1e-3)
