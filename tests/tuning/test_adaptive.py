"""The drift-tracking adaptive tuner: detector, lattice moves, e2e."""

import pytest

from repro.errors import TuningError
from repro.faults import FaultPlan
from repro.models import custom_model
from repro.training import ClusterSpec, SchedulerSpec, TrainingJob
from repro.tuning import AdaptiveTuner, PageHinkley, SearchSpace
from repro.units import MB


def make_job(
    arch="allreduce",
    kind="bytescheduler",
    partition=2 * MB,
    credit=4 * MB,
    fault_plan=None,
    enable_trace=False,
):
    cluster = ClusterSpec(
        machines=2, gpus_per_machine=2, arch=arch, transport="rdma",
        framework="mxnet", bandwidth_gbps=25,
    )
    model = custom_model(
        layer_bytes=[8 * MB, 24 * MB, 4 * MB],
        fp_times=[0.002] * 3,
        bp_times=[0.004] * 3,
        batch_size=16,
    )
    spec = SchedulerSpec(kind=kind, partition_bytes=partition, credit_bytes=credit)
    return TrainingJob(
        model, cluster, spec, fault_plan=fault_plan, enable_trace=enable_trace
    )


SPACE = SearchSpace(1 * MB, 64 * MB, 2 * MB, 256 * MB)


# -- Page-Hinkley ----------------------------------------------------------


def test_page_hinkley_quiet_on_stationary_noise():
    detector = PageHinkley(delta=0.02, threshold=0.25)
    for index in range(50):
        noise = 1.0 + (0.01 if index % 2 else -0.01)
        assert not detector.update(100.0 * noise)


def test_page_hinkley_fires_on_a_drop_and_names_the_side():
    detector = PageHinkley(delta=0.02, threshold=0.1)
    for _ in range(5):
        assert not detector.update(100.0)
    fired = False
    for _ in range(20):
        if detector.update(60.0):
            fired = True
            break
    assert fired
    assert detector.side == "drop"


def test_page_hinkley_fires_on_a_rise_and_names_the_side():
    detector = PageHinkley(delta=0.02, threshold=0.1)
    for _ in range(5):
        detector.update(100.0)
    fired = False
    for _ in range(20):
        if detector.update(160.0):
            fired = True
            break
    assert fired
    assert detector.side == "rise"


def test_page_hinkley_reset_forgets_history():
    detector = PageHinkley(delta=0.02, threshold=0.1)
    for _ in range(5):
        detector.update(100.0)
    detector.reset()
    assert detector.side is None
    # Post-reset, the new level is just the new baseline.
    for _ in range(5):
        assert not detector.update(60.0)


def test_page_hinkley_validation():
    with pytest.raises(TuningError):
        PageHinkley(delta=-0.1)
    with pytest.raises(TuningError):
        PageHinkley(threshold=0.0)


# -- construction and validation -------------------------------------------


def test_adaptive_tuner_validation():
    job = make_job()
    with pytest.raises(TuningError):
        AdaptiveTuner(job, space=SPACE, segment_iterations=0)
    with pytest.raises(TuningError):
        AdaptiveTuner(job, space=SPACE, probe_period=0)
    with pytest.raises(TuningError):
        AdaptiveTuner(job, space=SPACE, neighbor_step=0.0)
    with pytest.raises(TuningError):
        AdaptiveTuner(job, space=SPACE, neighbor_step=0.6)
    tuner = AdaptiveTuner(job, space=SPACE)
    with pytest.raises(TuningError):
        tuner.run(segments=0)


def test_adaptive_tuner_rejects_fifo_jobs():
    job = make_job(kind="fifo", partition=4 * MB, credit=16 * MB)
    with pytest.raises(TuningError):
        AdaptiveTuner(job, space=SPACE)


def test_adaptive_tuner_rejects_dear_jobs():
    cluster = ClusterSpec(
        machines=2, gpus_per_machine=2, arch="allreduce", transport="rdma",
        framework="pytorch", bandwidth_gbps=25,
    )
    model = custom_model(
        layer_bytes=[8 * MB, 24 * MB, 4 * MB],
        fp_times=[0.002] * 3,
        bp_times=[0.004] * 3,
        batch_size=16,
    )
    job = TrainingJob(model, cluster, SchedulerSpec(kind="dear"))
    with pytest.raises(TuningError, match="no partition/credit knobs"):
        AdaptiveTuner(job, space=SPACE)


# -- lattice helpers --------------------------------------------------------


def test_step_toward_clamps_to_one_lattice_hop():
    tuner = AdaptiveTuner(make_job(), space=SPACE, neighbor_step=0.25)
    assert tuner._step_toward((0.7, -0.6)) == (0.25, -0.25)
    assert tuner._step_toward((0.1, -0.05)) == (0.1, -0.05)


def test_sweep_pairs_cover_each_axis_with_a_two_hop_extension():
    tuner = AdaptiveTuner(make_job(), space=SPACE, neighbor_step=0.25)
    center = SPACE.from_unit((0.5, 0.5))
    pairs = tuner._sweep_pairs(center)
    assert len(pairs) == 4
    for near, far in pairs:
        assert near != center
        assert far is not None and far != near
        # The far point continues past the near one on the same axis.
        nu, nv = tuner._unit_delta(center, near)
        fu, fv = tuner._unit_delta(center, far)
        assert fu == pytest.approx(2 * nu, abs=1e-6)
        assert fv == pytest.approx(2 * nv, abs=1e-6)


def test_sweep_pairs_drop_far_points_swallowed_by_the_box_edge():
    tuner = AdaptiveTuner(make_job(), space=SPACE, neighbor_step=0.4)
    corner = SPACE.from_unit((0.0, 0.0))
    pairs = tuner._sweep_pairs(corner)
    # Only the two inward directions survive at a corner.
    assert len(pairs) == 2


# -- the control loop -------------------------------------------------------


def test_adaptive_run_records_segments_and_stats():
    job = make_job()
    tuner = AdaptiveTuner(job, space=SPACE, segment_iterations=2, seed=0)
    result = tuner.run(segments=6, final_iterations=3)
    assert result.num_segments >= 6
    assert result.final_speed > 0.0
    assert result.best_point == SPACE.clip(result.best_point)
    # The stats ledger lands on the job for the run report.
    stats = job.tuning_stats
    assert stats["tuner"] == "adaptive"
    assert stats["reconfigures"] == result.reconfigures
    assert stats["change_points"] == result.change_points
    assert stats["timeline"]
    entry = stats["timeline"][0]
    assert entry["end"] > entry["start"]
    assert entry["speed"] > 0.0


def test_adaptive_stationary_run_stays_quiet():
    job = make_job()
    tuner = AdaptiveTuner(job, space=SPACE, segment_iterations=2, seed=0)
    result = tuner.run(segments=10, final_iterations=3)
    # No drift, no alarms: the detector must not cry wolf.
    assert result.change_points == 0


def test_adaptive_detects_a_step_change():
    # A mid-run bandwidth collapse on the collective pipe must trip
    # Page-Hinkley while the tuner exploits through it.
    job = make_job(
        fault_plan=FaultPlan.parse("slowlink:m0.both@0.35-1000x0.3"),
        enable_trace=True,
    )
    tuner = AdaptiveTuner(
        job,
        space=SPACE,
        segment_iterations=2,
        seed=0,
        detector=PageHinkley(delta=0.01, threshold=0.06),
    )
    result = tuner.run(segments=16, final_iterations=3)
    assert result.change_points >= 1
    assert result.probes >= 1
    names = [
        name for _t, cat, name in job.trace.points
        if cat == "tuning.change_point"
    ]
    assert "page-hinkley" in names


def test_adaptive_until_stops_the_loop_by_simulated_time():
    job = make_job()
    tuner = AdaptiveTuner(job, space=SPACE, segment_iterations=2, seed=0)
    result = tuner.run(segments=500, final_iterations=2, until=0.25)
    # Far fewer than 500 segments fit in a quarter second.
    assert result.num_segments < 100
    assert job.env.now >= 0.25


def test_adaptive_emits_reconfigure_trace_points():
    job = make_job(partition=1 * MB, credit=2 * MB, enable_trace=True)
    tuner = AdaptiveTuner(job, space=SPACE, segment_iterations=2, seed=0)
    result = tuner.run(segments=8, final_iterations=2)
    if result.reconfigures:
        cats = [cat for _t, cat, _name in job.trace.points]
        assert cats.count("tuning.reconfigure") == result.reconfigures


def test_adaptive_allreduce_pays_no_restart_cost():
    job = make_job(arch="allreduce")
    tuner = AdaptiveTuner(job, space=SPACE, segment_iterations=2)
    result = tuner.run(segments=6)
    assert result.restart_overhead == 0.0


def test_adaptive_run_report_carries_the_tuning_section():
    from repro.obs import build_run_report

    job = make_job()
    tuner = AdaptiveTuner(job, space=SPACE, segment_iterations=2, seed=0)
    tuner.run(segments=4, final_iterations=2)
    result = job.run(measure=2, warmup=1)
    report = build_run_report(job, result)
    assert report.tuning["tuner"] == "adaptive"
    assert report.tuning["best_partition_bytes"] > 0
