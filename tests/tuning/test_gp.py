"""Unit tests for Gaussian-process regression."""

import numpy as np
import pytest

from repro.errors import TuningError
from repro.tuning import GaussianProcess


def test_interpolates_training_points():
    x = np.array([[0.1, 0.1], [0.5, 0.5], [0.9, 0.2]])
    y = np.array([1.0, 3.0, 2.0])
    gp = GaussianProcess(noise_variance=1e-8).fit(x, y)
    mean, std = gp.predict(x)
    assert mean == pytest.approx(y, abs=1e-3)
    assert (std < 0.05).all()


def test_uncertainty_grows_away_from_data():
    x = np.array([[0.5, 0.5]])
    y = np.array([1.0])
    gp = GaussianProcess().fit(x, y)
    _m_near, std_near = gp.predict(np.array([[0.52, 0.5]]))
    _m_far, std_far = gp.predict(np.array([[0.0, 1.0]]))
    assert std_far[0] > std_near[0]


def test_reverts_to_mean_far_away():
    x = np.array([[0.5, 0.5], [0.55, 0.5]])
    y = np.array([10.0, 12.0])
    gp = GaussianProcess(length_scale=0.05).fit(x, y)
    mean, _std = gp.predict(np.array([[0.0, 0.0]]))
    assert mean[0] == pytest.approx(11.0, abs=0.5)  # the data mean


def test_confidence_interval_contains_mean():
    x = np.array([[0.2, 0.3], [0.8, 0.7]])
    y = np.array([1.0, 2.0])
    gp = GaussianProcess().fit(x, y)
    query = np.array([[0.5, 0.5]])
    low, high = gp.confidence_interval(query)
    mean, _ = gp.predict(query)
    assert low[0] < mean[0] < high[0]


def test_noise_smooths_duplicates():
    x = np.array([[0.5, 0.5], [0.5, 0.5]])
    y = np.array([1.0, 3.0])
    gp = GaussianProcess(noise_variance=0.5).fit(x, y)
    mean, _ = gp.predict(np.array([[0.5, 0.5]]))
    assert mean[0] == pytest.approx(2.0, abs=0.5)


def test_predictive_std_floors_at_noise_level():
    # Regression: the posterior *predictive* variance must include the
    # observation noise (k** - vᵀv + σ_n²).  At a sampled point, the
    # latent uncertainty is ~0 but a fresh measurement still jitters by
    # σ_n, so std must not collapse below it — the pre-fix predict()
    # omitted the σ_n² term and reported near-zero std at sampled
    # points, making Expected Improvement over-exploit duplicates.
    noise_variance = 0.04
    repeats = 16
    x = np.concatenate(
        [np.full((repeats, 2), 0.5), np.array([[0.1, 0.1], [0.9, 0.9]])]
    )
    y = np.concatenate(
        [1.0 + 0.01 * np.arange(repeats), np.array([0.0, 2.0])]
    )
    gp = GaussianProcess(noise_variance=noise_variance).fit(x, y)
    _mean, std = gp.predict(np.array([[0.5, 0.5]]))
    # Internally y is standardised, so the floor scales by y's std.
    # With 16 repeats the *latent* variance at (0.5, 0.5) has shrunk to
    # ~σ_n²/16 — the pre-fix predict() reported roughly std/4 here.
    floor = np.sqrt(noise_variance) * np.std(y)
    assert std[0] >= floor * 0.99
    assert std[0] == pytest.approx(floor, rel=0.1)


def test_noise_free_gp_still_collapses_at_data():
    # With σ_n = 0 the predictive and latent variances coincide, so the
    # fix must not inflate the interpolating case.
    x = np.array([[0.3, 0.4], [0.7, 0.6]])
    gp = GaussianProcess(noise_variance=0.0).fit(x, np.array([1.0, 2.0]))
    _mean, std = gp.predict(x)
    assert (std < 1e-3).all()


def test_predict_before_fit_raises():
    with pytest.raises(TuningError):
        GaussianProcess().predict(np.array([[0.5, 0.5]]))


def test_fit_validation():
    gp = GaussianProcess()
    with pytest.raises(TuningError):
        gp.fit(np.zeros((0, 2)), np.zeros(0))
    with pytest.raises(TuningError):
        gp.fit(np.zeros((2, 2)), np.zeros(3))
    with pytest.raises(TuningError):
        gp.fit(np.zeros(3), np.zeros(3))


def test_invalid_hyperparameters():
    with pytest.raises(TuningError):
        GaussianProcess(length_scale=0.0)


def test_1d_query_accepted():
    x = np.array([[0.3, 0.3]])
    gp = GaussianProcess().fit(x, np.array([5.0]))
    mean, std = gp.predict(np.array([0.3, 0.3]))
    assert mean.shape == (1,)
