"""Tests for the §7 extensions: online re-tuning and per-layer partitions."""

import pytest

from repro.errors import SchedulerError, TuningError
from repro.models import custom_model
from repro.training import ClusterSpec, SchedulerSpec, TrainingJob
from repro.tuning import OnlineTuner, SearchSpace
from repro.units import MB


def make_job(arch="allreduce", kind="bytescheduler", partition=2 * MB, credit=4 * MB):
    cluster = ClusterSpec(
        machines=2, gpus_per_machine=2, arch=arch, transport="rdma",
        framework="mxnet", bandwidth_gbps=25,
    )
    model = custom_model(
        layer_bytes=[8 * MB, 24 * MB, 4 * MB],
        fp_times=[0.002] * 3,
        bp_times=[0.004] * 3,
        batch_size=16,
    )
    spec = SchedulerSpec(kind=kind, partition_bytes=partition, credit_bytes=credit)
    return TrainingJob(model, cluster, spec)


SPACE = SearchSpace(1 * MB, 64 * MB, 2 * MB, 256 * MB)


def test_online_tuner_improves_bad_initial_knobs():
    job = make_job(partition=1 * MB, credit=1 * MB)  # badly under-tuned
    tuner = OnlineTuner(job, space=SPACE, segment_iterations=2, seed=0)
    result = tuner.run(segments=6, final_iterations=3)
    first_speed = result.segments[0][1]
    assert result.final_speed >= first_speed * 0.95
    assert result.best_speed >= max(s for _p, s in result.segments) - 1e-9
    assert result.num_segments == 6


def test_online_tuner_allreduce_retunes_without_restart_cost():
    job = make_job(arch="allreduce")
    tuner = OnlineTuner(job, space=SPACE, segment_iterations=2)
    result = tuner.run(segments=4)
    assert result.restart_overhead == 0.0


def test_online_tuner_ps_charges_restarts():
    job = make_job(arch="ps")
    tuner = OnlineTuner(job, space=SPACE, segment_iterations=2, restart_penalty=5.0)
    result = tuner.run(segments=4)
    # BO explores: at least one partition change across 4 segments.
    assert result.restart_overhead >= 5.0


def test_online_tuner_rejects_fifo_jobs():
    job = make_job(kind="fifo", partition=4 * MB, credit=16 * MB)
    with pytest.raises(TuningError):
        OnlineTuner(job, space=SPACE)


def test_online_tuner_rejects_dear_jobs():
    """DeAR has no partition/credit knobs — tuning it is a caller bug."""
    cluster = ClusterSpec(
        machines=2, gpus_per_machine=2, arch="allreduce", transport="rdma",
        framework="pytorch", bandwidth_gbps=25,
    )
    model = custom_model(
        layer_bytes=[8 * MB, 24 * MB, 4 * MB],
        fp_times=[0.002] * 3,
        bp_times=[0.004] * 3,
        batch_size=16,
    )
    job = TrainingJob(model, cluster, SchedulerSpec(kind="dear"))
    with pytest.raises(TuningError, match="no partition/credit knobs"):
        OnlineTuner(job, space=SPACE)


def test_online_tuner_validation():
    job = make_job()
    with pytest.raises(TuningError):
        OnlineTuner(job, space=SPACE, segment_iterations=0)
    tuner = OnlineTuner(job, space=SPACE)
    with pytest.raises(TuningError):
        tuner.run(segments=0)


def test_job_reconfigure_applies_to_later_iterations():
    job = make_job(partition=2 * MB)
    job.extend(2)
    job.drain()
    job.reconfigure(partition_bytes=8 * MB, credit_bytes=32 * MB)
    job.extend(2)
    job.drain()
    core = job.master_core
    assert core.partition_bytes == 8 * MB
    assert core.credit_capacity == 32 * MB


def test_segment_speed_validation():
    job = make_job()
    job.extend(3)
    job.drain()
    assert job.segment_speed(1, 3) > 0
    from repro.errors import ConfigError

    with pytest.raises(ConfigError):
        job.segment_speed(0, 3)  # needs a previous marker
    with pytest.raises(ConfigError):
        job.segment_speed(2, 9)  # beyond what was built


def test_per_layer_partition_overrides():
    """§7: different partition sizes for different layers."""
    cluster = ClusterSpec(machines=2, gpus_per_machine=2, bandwidth_gbps=25)
    model = custom_model(
        layer_bytes=[8 * MB, 24 * MB, 4 * MB],
        fp_times=[0.002] * 3,
        bp_times=[0.004] * 3,
        batch_size=16,
    )
    spec = SchedulerSpec(
        kind="bytescheduler",
        partition_bytes=4 * MB,
        credit_bytes=16 * MB,
        partition_overrides=((1, 12 * MB),),
    )
    job = TrainingJob(model, cluster, spec)
    job.extend(1)
    job.drain()
    assert job.master_core.partition_overrides == {1: 12 * MB}


def test_partition_override_chunk_counts():
    from repro.comm.base import ChunkHandle, CommBackend
    from repro.core import ByteSchedulerCore
    from repro.sim import Environment

    class NullBackend(CommBackend):
        is_collective = True
        workers = ("m0",)

        def __init__(self, env):
            self.env = env

        def start_chunk(self, chunk):
            done = self.env.timeout(0.0, value=chunk)
            return ChunkHandle(sent=done, done=done)

    env = Environment()
    core = ByteSchedulerCore(
        env,
        NullBackend(env),
        partition_bytes=4 * MB,
        partition_overrides={1: 12 * MB},
    )
    default_task = core.create_task(0, 0, 24 * MB)
    override_task = core.create_task(0, 1, 24 * MB)
    assert len(default_task.subtasks) == 6
    assert len(override_task.subtasks) == 2


def test_partition_override_validation():
    from repro.comm.base import ChunkHandle, CommBackend
    from repro.core import ByteSchedulerCore
    from repro.sim import Environment

    class NullBackend(CommBackend):
        is_collective = True
        workers = ("m0",)

        def start_chunk(self, chunk):  # pragma: no cover - never called
            raise AssertionError

    env = Environment()
    with pytest.raises(SchedulerError):
        ByteSchedulerCore(
            env, NullBackend(), partition_overrides={0: -1.0}
        )


# -- restart accounting (PS) ------------------------------------------------


class _FixedSearcher:
    """Stub searcher that always suggests one point."""

    def __init__(self, point):
        self._point = point
        self.history = []

    def suggest(self):
        return self._point

    def observe(self, point, speed):
        self.history.append((point, speed))

    def best(self):
        return max(self.history, key=lambda entry: entry[1])


def test_first_differing_suggestion_charges_restart():
    # Regression: last_partition must seed from the job's *current*
    # partition, so the very first suggestion that changes it is
    # charged too — not just changes between suggestions.
    job = make_job(arch="ps", partition=2 * MB, credit=8 * MB)
    tuner = OnlineTuner(job, space=SPACE, segment_iterations=2,
                        restart_penalty=7.0)
    tuner.searcher = _FixedSearcher((8 * MB, 32 * MB))
    result = tuner.run(segments=3, final_iterations=2)
    # One partition change (2 MB -> 8 MB on the first segment), then
    # the stub holds the point steady: exactly one penalty.
    assert result.restart_overhead == pytest.approx(7.0)


def test_unchanged_suggestion_is_free():
    job = make_job(arch="ps", partition=8 * MB, credit=32 * MB)
    tuner = OnlineTuner(job, space=SPACE, segment_iterations=2,
                        restart_penalty=7.0)
    tuner.searcher = _FixedSearcher((8 * MB, 32 * MB))
    result = tuner.run(segments=3, final_iterations=2)
    assert result.restart_overhead == 0.0


# -- membership change-point resets -----------------------------------------


def _elastic_job(plan_spec="leave:w1@0.05;join:w1@0.15", seed=0):
    from repro.faults import FaultPlan
    from repro.recovery import MembershipSpec

    cluster = ClusterSpec(
        machines=4, gpus_per_machine=1, arch="ps", seed=seed
    )
    model = custom_model(
        layer_bytes=[8 * MB, 24 * MB, 4 * MB],
        fp_times=[0.002] * 3,
        bp_times=[0.004] * 3,
        batch_size=16,
    )
    spec = SchedulerSpec(
        kind="bytescheduler", partition_bytes=8 * MB, credit_bytes=32 * MB
    )
    return TrainingJob(
        model,
        cluster,
        spec,
        fault_plan=FaultPlan.parse(f"{plan_spec};seed:{seed}"),
        membership_spec=MembershipSpec(min_workers=1),
    )


def test_epoch_change_resets_searcher_and_retunes():
    job = _elastic_job()
    tuner = OnlineTuner(job, space=SPACE, segment_iterations=2, seed=0)
    result = tuner.run(segments=6, final_iterations=2)
    # Both scale events matured while tuning ran.
    assert job.membership.epoch == 2
    assert result.change_point_resets >= 1
    # The run still converges to a usable configuration.
    assert result.final_speed > 0
    assert result.segments
    # Post-reset history only: resets discarded the stale profiles.
    assert result.num_segments < 6 + 1


def test_static_job_never_resets():
    job = make_job(arch="allreduce")
    tuner = OnlineTuner(job, space=SPACE, segment_iterations=2)
    result = tuner.run(segments=4)
    assert result.change_point_resets == 0
