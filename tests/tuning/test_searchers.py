"""Unit tests for the search strategies and the auto-tuner."""

import math

import pytest

from repro.errors import TuningError
from repro.tuning import (
    AutoTuner,
    BayesianOptimizer,
    GridSearch,
    RandomSearch,
    Searcher,
    SearchSpace,
    SGDMomentumSearch,
    make_searcher,
)
from repro.units import MB

SPACE = SearchSpace(
    partition_min=1 * MB,
    partition_max=64 * MB,
    credit_min=1 * MB,
    credit_max=256 * MB,
)


def quadratic_objective(partition, credit):
    """Smooth unimodal speed surface peaking at (8 MB, 32 MB)."""
    lp = math.log2(partition / (8 * MB))
    lc = math.log2(credit / (32 * MB))
    return 1000.0 - 40.0 * lp * lp - 25.0 * lc * lc


def run_searcher(searcher, trials, objective=quadratic_objective):
    for _ in range(trials):
        point = searcher.suggest()
        searcher.observe(point, objective(*point))
    return searcher.best()


def test_grid_visits_every_point_once():
    searcher = GridSearch(SPACE, resolution=3)
    points = [searcher.suggest() for _ in range(9)]
    assert len(set(points)) == 9
    with pytest.raises(TuningError):
        searcher.suggest()


def test_grid_finds_coarse_optimum():
    searcher = GridSearch(SPACE, resolution=7)
    (partition, credit), best = run_searcher(searcher, 49)
    assert best >= 900.0


def test_random_search_reproducible():
    a = RandomSearch(SPACE, seed=11)
    b = RandomSearch(SPACE, seed=11)
    assert [a.suggest() for _ in range(5)] == [b.suggest() for _ in range(5)]


def test_bo_beats_random_on_budget():
    budget = 12
    bo_best = run_searcher(BayesianOptimizer(SPACE, seed=1), budget)[1]
    rnd_best = run_searcher(RandomSearch(SPACE, seed=1), budget)[1]
    assert bo_best >= rnd_best - 1e-9


def test_bo_converges_near_optimum():
    searcher = BayesianOptimizer(SPACE, seed=3)
    (_point, best) = run_searcher(searcher, 15)
    assert best >= 985.0  # within 1.5% of the peak (1000)


def test_bo_posterior_matches_observations():
    import numpy as np

    searcher = BayesianOptimizer(SPACE, seed=0)
    run_searcher(searcher, 8)
    units = np.array([SPACE.to_unit(point) for point, _ in searcher.history])
    mean, std = searcher.posterior(units)
    observed = [speed for _, speed in searcher.history]
    assert mean == pytest.approx(observed, rel=0.05)


def test_sgd_improves_over_start():
    searcher = SGDMomentumSearch(SPACE, seed=5)
    first_point = searcher.suggest()
    first_value = quadratic_objective(*first_point)
    _best_point, best = run_searcher(searcher, 30)
    assert best >= first_value


def test_best_before_observations_raises():
    with pytest.raises(TuningError):
        RandomSearch(SPACE).best()


def test_make_searcher_names():
    for name, cls in [
        ("bo", BayesianOptimizer),
        ("grid", GridSearch),
        ("random", RandomSearch),
        ("sgd", SGDMomentumSearch),
    ]:
        assert isinstance(make_searcher(name, SPACE), cls)
    with pytest.raises(TuningError):
        make_searcher("simulated-annealing", SPACE)


def test_autotuner_finds_good_point():
    tuner = AutoTuner(quadratic_objective, space=SPACE, method="bo", seed=2)
    result = tuner.run(max_trials=15)
    assert result.best_speed >= 980.0
    assert result.num_trials == 15


def test_autotuner_noise_is_seeded():
    tuner_a = AutoTuner(quadratic_objective, space=SPACE, seed=4, noise=0.05)
    tuner_b = AutoTuner(quadratic_objective, space=SPACE, seed=4, noise=0.05)
    assert tuner_a.run(8).trials == tuner_b.run(8).trials


def test_autotuner_restart_penalty_charged_on_partition_change():
    tuner = AutoTuner(
        quadratic_objective,
        space=SPACE,
        method="random",
        seed=1,
        restart_penalty=5.0,
    )
    result = tuner.run(max_trials=6)
    # Random search changes partition nearly every trial.
    assert result.restart_overhead >= 5.0 * 4


class OutOfBoxSearcher(Searcher):
    """Scripted searcher whose suggestions may fall outside the box."""

    def __init__(self, space, suggestions):
        super().__init__(space)
        self._suggestions = list(suggestions)

    def suggest(self):
        return self._suggestions.pop(0)


def test_autotuner_clips_before_charging_restarts():
    # Two distinct unclipped suggestions that clip to the *same*
    # boundary partition: the pre-fix tuner compared the raw
    # suggestions and charged a spurious PS restart.
    tuner = AutoTuner(
        quadratic_objective,
        space=SPACE,
        restart_penalty=5.0,
    )
    tuner.searcher = OutOfBoxSearcher(
        SPACE,
        [
            (256 * MB, 32 * MB),  # clips to partition_max = 64 MB
            (512 * MB, 32 * MB),  # clips to partition_max too
        ],
    )
    result = tuner.run(max_trials=2)
    assert result.restart_overhead == 0.0


def test_autotuner_records_clipped_trials():
    # Trials and best_point must be inside the search box even when the
    # searcher suggests points outside it (the pre-fix tuner recorded
    # the raw suggestion while profiling the clipped one).
    tuner = AutoTuner(quadratic_objective, space=SPACE)
    tuner.searcher = OutOfBoxSearcher(
        SPACE, [(1e12, 1e12), (1.0, 1.0), (8 * MB, 32 * MB)]
    )
    result = tuner.run(max_trials=3)
    for (partition, credit), _speed in result.trials:
        assert SPACE.partition_min <= partition <= SPACE.partition_max
        assert SPACE.credit_min <= credit <= SPACE.credit_max
    best_partition, best_credit = result.best_point
    assert SPACE.partition_min <= best_partition <= SPACE.partition_max
    assert SPACE.credit_min <= best_credit <= SPACE.credit_max
    # The in-box optimum wins, and its recorded speed matches the
    # clipped configuration that was actually profiled.
    assert result.best_point == (8 * MB, 32 * MB)
    assert result.best_speed == pytest.approx(1000.0)


def test_autotuner_validation():
    with pytest.raises(TuningError):
        AutoTuner(quadratic_objective, noise=-1.0)
    tuner = AutoTuner(quadratic_objective, space=SPACE)
    with pytest.raises(TuningError):
        tuner.run(max_trials=0)


def test_trials_to_reach():
    tuner = AutoTuner(quadratic_objective, space=SPACE, method="grid")
    result = tuner.run(max_trials=20)
    needed = result.trials_to_reach(result.best_speed)
    assert needed is not None
    assert 1 <= needed <= 20
    assert result.trials_to_reach(1e9) is None
