"""Unit tests for the (partition, credit) search space."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TuningError
from repro.tuning import SearchSpace
from repro.units import KB, MB


def test_unit_round_trip():
    space = SearchSpace()
    point = (4 * MB, 32 * MB)
    unit = space.to_unit(point)
    back = space.from_unit(unit)
    assert back[0] == pytest.approx(point[0], rel=1e-9)
    assert back[1] == pytest.approx(point[1], rel=1e-9)


def test_corners_map_to_bounds():
    space = SearchSpace()
    assert space.from_unit((0.0, 0.0)) == pytest.approx(
        (space.partition_min, space.credit_min)
    )
    assert space.from_unit((1.0, 1.0)) == pytest.approx(
        (space.partition_max, space.credit_max)
    )


def test_from_unit_clips_out_of_range():
    space = SearchSpace()
    low = space.from_unit((-1.0, 2.0))
    assert low[0] == pytest.approx(space.partition_min)
    assert low[1] == pytest.approx(space.credit_max)


def test_clip():
    space = SearchSpace(partition_min=1 * MB, partition_max=8 * MB)
    assert space.clip((100 * MB, 1 * MB))[0] == 8 * MB
    assert space.clip((1 * KB, 1 * MB))[0] == 1 * MB


def test_grid_is_log_uniform_and_complete():
    space = SearchSpace()
    grid = space.grid(4)
    assert len(grid) == 16
    partitions = sorted({point[0] for point in grid})
    # Log-uniform: successive ratios equal.
    ratios = [b / a for a, b in zip(partitions, partitions[1:])]
    assert all(r == pytest.approx(ratios[0], rel=1e-9) for r in ratios)


def test_grid_resolution_validation():
    with pytest.raises(TuningError):
        SearchSpace().grid(1)


def test_sample_is_reproducible():
    space = SearchSpace()
    assert space.sample(random.Random(3)) == space.sample(random.Random(3))


def test_invalid_ranges_rejected():
    with pytest.raises(TuningError):
        SearchSpace(partition_min=8 * MB, partition_max=4 * MB)
    with pytest.raises(TuningError):
        SearchSpace(credit_min=0.0)


@given(u=st.floats(0, 1), v=st.floats(0, 1))
@settings(max_examples=50, deadline=None)
def test_from_unit_always_in_box(u, v):
    space = SearchSpace()
    partition, credit = space.from_unit((u, v))
    assert space.partition_min <= partition <= space.partition_max * (1 + 1e-9)
    assert space.credit_min <= credit <= space.credit_max * (1 + 1e-9)
